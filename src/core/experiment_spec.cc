#include "core/experiment_spec.h"

#include <set>

#include "common/string_util.h"
#include "common/units.h"
#include "core/batch_search.h"
#include "core/tuning/tuner.h"
#include "graph/datasets.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

const std::set<std::string>& KnownKeys() {
  static const auto& keys = *new std::set<std::string>{
      "dataset", "task",  "system", "cluster", "machines",
      "workload", "schedule", "scale", "seed", "threads",
      "memory_budget", "ooc_dir"};
  return keys;
}

Result<ClusterSpec> ResolveCluster(const ExperimentSpec& spec) {
  ClusterSpec cluster;
  if (spec.cluster == "galaxy") {
    cluster = ClusterSpec::Galaxy8();
  } else if (spec.cluster == "galaxy27") {
    cluster = ClusterSpec::Galaxy27();
  } else if (spec.cluster == "docker") {
    cluster = ClusterSpec::Docker32();
  } else {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': unknown cluster '" + spec.cluster +
                                   "'");
  }
  if (spec.machines > 0) cluster = cluster.WithMachines(spec.machines);
  return cluster;
}

/// Parses "equal:4", "twobatch:2560", "geometric:5,0.5", "tuned",
/// "search".
Result<BatchSchedule> ResolveSchedule(const ExperimentSpec& spec,
                                      const Dataset& dataset,
                                      const RunnerOptions& options,
                                      const MultiTask& task) {
  std::vector<std::string> parts = SplitString(spec.schedule, ":");
  const std::string& kind = parts[0];
  if (kind == "tuned") {
    Tuner tuner(dataset, options);
    VCMP_ASSIGN_OR_RETURN(TunedPlan plan,
                          tuner.Tune(task, spec.workload));
    return plan.schedule;
  }
  if (kind == "search") {
    VCMP_ASSIGN_OR_RETURN(
        BatchSearchResult search,
        FindOptimalBatchCount(dataset, options, task, spec.workload));
    return BatchSchedule::Equal(spec.workload, search.best_batches);
  }
  if (parts.size() != 2) {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': malformed schedule '" +
                                   spec.schedule + "'");
  }
  if (kind == "equal") {
    return BatchSchedule::Equal(
        spec.workload, static_cast<uint32_t>(std::atoi(parts[1].c_str())));
  }
  if (kind == "twobatch") {
    return BatchSchedule::TwoBatch(spec.workload,
                                   std::atof(parts[1].c_str()));
  }
  if (kind == "geometric") {
    std::vector<std::string> args = SplitString(parts[1], ",");
    if (args.size() != 2) {
      return Status::InvalidArgument(
          "experiment '" + spec.name +
          "': geometric schedule needs 'geometric:K,RATIO'");
    }
    return BatchSchedule::GeometricDecay(
        spec.workload, static_cast<uint32_t>(std::atoi(args[0].c_str())),
        std::atof(args[1].c_str()));
  }
  return Status::InvalidArgument("experiment '" + spec.name +
                                 "': unknown schedule kind '" + kind + "'");
}

}  // namespace

Result<std::vector<ExperimentSpec>> ParseExperimentSpecs(
    const IniDocument& document) {
  std::vector<ExperimentSpec> specs;
  for (const IniDocument::Section& section : document.sections()) {
    if (section.name.empty()) {
      return Status::InvalidArgument(
          "experiment keys must live inside a [named] section");
    }
    for (const auto& [key, value] : section.values) {
      (void)value;
      if (KnownKeys().find(key) == KnownKeys().end()) {
        return Status::InvalidArgument("experiment '" + section.name +
                                       "': unknown key '" + key + "'");
      }
    }
    ExperimentSpec spec;
    spec.name = section.name;
    spec.dataset = IniDocument::GetString(section, "dataset", spec.dataset);
    spec.task = IniDocument::GetString(section, "task", spec.task);
    spec.system = IniDocument::GetString(section, "system", spec.system);
    spec.cluster = IniDocument::GetString(section, "cluster", spec.cluster);
    VCMP_ASSIGN_OR_RETURN(int64_t machines,
                          IniDocument::GetInt(section, "machines", 0));
    spec.machines = static_cast<uint32_t>(machines);
    VCMP_ASSIGN_OR_RETURN(
        spec.workload,
        IniDocument::GetDouble(section, "workload", spec.workload));
    spec.schedule = IniDocument::GetString(section, "schedule",
                                           spec.schedule);
    VCMP_ASSIGN_OR_RETURN(spec.scale,
                          IniDocument::GetDouble(section, "scale", 0.0));
    VCMP_ASSIGN_OR_RETURN(int64_t seed,
                          IniDocument::GetInt(section, "seed", 1));
    spec.seed = static_cast<uint64_t>(seed);
    VCMP_ASSIGN_OR_RETURN(int64_t threads,
                          IniDocument::GetInt(section, "threads", 0));
    spec.threads = static_cast<uint32_t>(threads);
    spec.memory_budget =
        IniDocument::GetString(section, "memory_budget", "");
    spec.ooc_dir = IniDocument::GetString(section, "ooc_dir", "");
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Status::InvalidArgument("no experiment sections found");
  }
  return specs;
}

Result<ExperimentResult> RunExperiment(const ExperimentSpec& spec,
                                       Tracer* tracer) {
  VCMP_ASSIGN_OR_RETURN(DatasetInfo info, FindDataset(spec.dataset));
  Dataset dataset = LoadDataset(info.id, spec.scale);

  RunnerOptions options;
  VCMP_ASSIGN_OR_RETURN(options.cluster, ResolveCluster(spec));
  SystemKind system = SystemKind::kPregelPlus;
  if (!SystemKindFromName(spec.system, &system)) {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': unknown system '" + spec.system +
                                   "'");
  }
  options.system = system;
  options.seed = spec.seed;
  options.execution_threads = spec.threads;
  if (!spec.memory_budget.empty()) {
    VCMP_ASSIGN_OR_RETURN(options.ooc.memory_budget_bytes,
                          ParseByteSize(spec.memory_budget));
    options.ooc.enabled = true;
    options.ooc.directory = spec.ooc_dir;
  } else if (!spec.ooc_dir.empty()) {
    return Status::InvalidArgument(
        "experiment '" + spec.name +
        "': ooc_dir requires memory_budget to enable real out-of-core "
        "execution");
  }

  VCMP_ASSIGN_OR_RETURN(std::unique_ptr<MultiTask> task,
                        MakeTask(spec.task));
  ExperimentResult result;
  result.spec = spec;
  VCMP_ASSIGN_OR_RETURN(
      result.schedule,
      ResolveSchedule(spec, dataset, options, *task));
  // Wired only after schedule resolution so tuner/search probes do not
  // flood the trace with exploration runs.
  options.tracer = tracer;
  options.trace_label = spec.name;
  MultiProcessingRunner runner(dataset, options);
  VCMP_ASSIGN_OR_RETURN(result.report, runner.Run(*task, result.schedule));
  return result;
}

}  // namespace vcmp
