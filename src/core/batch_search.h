#ifndef VCMP_CORE_BATCH_SEARCH_H_
#define VCMP_CORE_BATCH_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/runner.h"
#include "tasks/task.h"

namespace vcmp {

/// One probed batch count and its outcome.
struct BatchProbe {
  uint32_t batches = 0;
  double seconds = 0.0;
  bool overloaded = false;
};

/// Result of a batch-count search.
struct BatchSearchResult {
  uint32_t best_batches = 1;
  double best_seconds = 0.0;
  /// Every (batches, seconds) probe, in evaluation order.
  std::vector<BatchProbe> probes;
};

/// Options for FindOptimalBatchCount.
struct BatchSearchOptions {
  /// Upper bound on the batch count considered.
  uint32_t max_batches = 256;
  /// Refine between the best doubling point and its neighbours (the
  /// paper's "finer granularity" exploration beyond {1,2,4,8,16}).
  bool refine = true;
  /// Number of golden-section-style refinement probes.
  uint32_t refinement_probes = 6;
};

/// Sweeps doubling batch counts {1, 2, 4, ...} for `task` at `workload`
/// and then (optionally) refines around the best doubling point with a
/// bracketed search, exploiting the empirically unimodal shape of the
/// round-congestion tradeoff (time falls until the congestion bound is
/// cleared, then rises with synchronisation overhead). This is the
/// trial-and-error tuning loop of the paper's "Practical Guidelines"
/// (Section 4.10), automated against the simulator.
Result<BatchSearchResult> FindOptimalBatchCount(
    const Dataset& dataset, const RunnerOptions& runner_options,
    const MultiTask& task, double workload,
    const BatchSearchOptions& options = {});

}  // namespace vcmp

#endif  // VCMP_CORE_BATCH_SEARCH_H_
