#ifndef VCMP_CORE_CONCURRENT_RUNNER_H_
#define VCMP_CORE_CONCURRENT_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/batch_schedule.h"
#include "core/runner.h"
#include "graph/datasets.h"
#include "graph/partition.h"
#include "metrics/run_report.h"
#include "tasks/task.h"

namespace vcmp {

class Tracer;

/// One query of a concurrent multi-query run: a multi-task workload plus
/// the batch schedule to execute it under.
struct ConcurrentQuery {
  /// Must outlive the Run call.
  const MultiTask* task = nullptr;
  BatchSchedule schedule;
  /// Trace "process" label for this query's tracks; empty derives
  /// "q<index>".
  std::string label;
};

/// Configuration of a concurrent multi-query run.
struct ConcurrentRunnerOptions {
  /// Template for every query's MultiProcessingRunner: cluster, system,
  /// cost, seed, threads, out-of-core settings. Per-query fields
  /// (query_id, pool, shared_partition, tracer, ooc directory/budget) are
  /// overwritten by the concurrent runner; base.tracer and the per-batch
  /// observer hooks must be unset (observers would otherwise run on
  /// several driver threads at once).
  RunnerOptions base;

  /// Queries in flight at once (K). Query i is pinned to driver slot
  /// i mod K — a static round-robin interleaving, so which queries share
  /// the machine is a function of (i, K) and never of timing. 1 executes
  /// the queries back to back (the historical serial behavior).
  uint32_t concurrency = 1;

  /// Optional merged trace. Each query records into a private tracer
  /// (the recorder is not thread-safe) and the recordings are replayed
  /// into this one in query order after every query finished, so the
  /// merged trace is deterministic at every concurrency level.
  Tracer* tracer = nullptr;
};

/// Per-query outcome: a failed query (bad spec, infeasible budget) does
/// not poison its neighbors — each slot carries its own status.
struct QueryOutcome {
  Status status = Status::OK();
  /// Valid only when status.ok().
  RunReport report;
};

/// Aggregate of one concurrent run.
struct ConcurrentRunReport {
  /// Indexed by query; identical at every concurrency and thread count.
  std::vector<QueryOutcome> queries;
  /// Sum of the queries' simulated seconds (deterministic).
  double total_simulated_seconds = 0.0;
  /// Max per-query simulated seconds (deterministic).
  double max_simulated_seconds = 0.0;
  uint64_t queries_failed = 0;
  bool any_overloaded = false;
  /// Measured wall seconds of the whole Run call — the only
  /// non-deterministic field (benchmarks read it; golden tests must
  /// not).
  double wall_seconds = 0.0;
};

/// Executes K queries at a time over shared immutable graph state.
///
/// All queries run against one graph, one partition (computed once in the
/// constructor — it depends only on graph/profile/cluster) and one
/// ThreadPool; everything a query mutates lives in its own
/// MultiProcessingRunner, QueryContext arenas, tracer and spill
/// directory. Per-query results are bit-identical to running the same
/// query alone: each is a pure function of (task, schedule, base seed,
/// query id), and the query id namespaces every seed derivation
/// (DESIGN.md section 14).
class ConcurrentRunner {
 public:
  /// `dataset` must outlive the runner.
  ConcurrentRunner(const Dataset& dataset, ConcurrentRunnerOptions options);

  ConcurrentRunner(const ConcurrentRunner&) = delete;
  ConcurrentRunner& operator=(const ConcurrentRunner&) = delete;

  /// Runs every query, K in flight. Returns InvalidArgument for a
  /// malformed configuration (concurrency 0, no queries, null task,
  /// preset per-query fields); individual query failures land in their
  /// QueryOutcome instead.
  Result<ConcurrentRunReport> Run(
      const std::vector<ConcurrentQuery>& queries);

  const SystemProfile& profile() const { return profile_; }
  const Partitioning& partition() const { return partition_; }

 private:
  const Dataset& dataset_;
  ConcurrentRunnerOptions options_;
  SystemProfile profile_;
  Partitioning partition_;
};

}  // namespace vcmp

#endif  // VCMP_CORE_CONCURRENT_RUNNER_H_
