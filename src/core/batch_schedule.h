#ifndef VCMP_CORE_BATCH_SCHEDULE_H_
#define VCMP_CORE_BATCH_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vcmp {

/// A concurrency scheme S = {W1, ..., Wt}: the workload division the paper
/// studies (Section 4's k-batch mechanism, Section 4.7's unequal batches,
/// Section 5's learned schedules). Batches execute sequentially; the units
/// inside one batch run concurrently.
class BatchSchedule {
 public:
  BatchSchedule() = default;
  explicit BatchSchedule(std::vector<double> workloads)
      : workloads_(std::move(workloads)) {}

  /// The paper's k-batch mechanism: `total` divided into `batches` equal
  /// parts (earlier batches take the rounding remainder, keeping workloads
  /// integral).
  static BatchSchedule Equal(double total, uint32_t batches);

  /// 1-batch == Full-Parallelism.
  static BatchSchedule FullParallelism(double total);

  /// Section 4.7: two batches with W1 - W2 = delta (delta may be
  /// negative; |delta| <= total).
  static BatchSchedule TwoBatch(double total, double delta);

  /// Decreasing batches W_{i+1} = ratio * W_i (ratio in (0, 1]),
  /// normalised to sum to `total`. A cheap approximation of the learned
  /// schedules of Section 5, which the paper observes always decrease
  /// ("later batches should have smaller workloads", Section 4.10).
  static BatchSchedule GeometricDecay(double total, uint32_t batches,
                                      double ratio);

  const std::vector<double>& workloads() const { return workloads_; }
  size_t NumBatches() const { return workloads_.size(); }
  double TotalWorkload() const;
  bool IsFullParallelism() const { return workloads_.size() == 1; }

  /// e.g. "[2747, 1388, 644, 266, 75]".
  std::string ToString() const;

 private:
  std::vector<double> workloads_;
};

}  // namespace vcmp

#endif  // VCMP_CORE_BATCH_SCHEDULE_H_
