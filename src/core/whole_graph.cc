#include "core/whole_graph.h"

#include <algorithm>
#include <cmath>

#include "engine/sync_engine.h"
#include "graph/partition.h"

namespace vcmp {

WholeGraphRunner::WholeGraphRunner(const Dataset& dataset,
                                   WholeGraphOptions options)
    : dataset_(dataset), options_(std::move(options)) {}

Result<WholeGraphReport> WholeGraphRunner::Run(
    const MultiTask& task, const BatchSchedule& schedule) {
  if (schedule.NumBatches() == 0) {
    return Status::InvalidArgument("empty batch schedule");
  }
  const uint32_t machines = options_.cluster.num_machines;

  // Each machine is an independent single-machine Pregel+ instance over
  // the full graph, processing workload/machines of every batch. All
  // instances run in lock-step on equal shares, so simulating one machine
  // gives the cluster's wall-clock.
  Partitioning local;
  local.num_machines = 1;
  local.assignment.assign(dataset_.graph.NumVertices(), 0);
  ClusterSpec single = options_.cluster.WithMachines(1);
  single.name = options_.cluster.name + "/whole-graph";

  WholeGraphReport report;
  TaskContext context{&dataset_.graph, &local, dataset_.scale};
  std::vector<double> carryover(1, 0.0);

  uint64_t batch_index = 0;
  for (double workload : schedule.workloads()) {
    ++batch_index;
    double machine_share = workload / machines;
    if (machine_share < 1.0 && workload > 0.0) machine_share = 1.0;
    if (workload <= 0.0) continue;

    VCMP_ASSIGN_OR_RETURN(
        std::unique_ptr<VertexProgram> program,
        task.MakeProgram(context, ProgramFlavor::kPointToPoint,
                         machine_share,
                         options_.seed * 2654435761ULL + batch_index));

    EngineOptions engine_options;
    engine_options.cluster = single;
    engine_options.profile = ProfileFor(SystemKind::kPregelPlus);
    engine_options.cost = options_.cost;
    engine_options.stat_scale = dataset_.scale;
    engine_options.carryover_residual_bytes = carryover;
    engine_options.max_rounds = options_.max_rounds;
    engine_options.seed = options_.seed + batch_index;

    SyncEngine engine(dataset_.graph, local, engine_options);
    VCMP_ASSIGN_OR_RETURN(EngineResult result, engine.Run(*program));

    report.algorithm_seconds +=
        result.seconds + options_.cost.batch_overhead_seconds;
    report.total_rounds += result.num_rounds;
    report.peak_memory_bytes =
        std::max(report.peak_memory_bytes, result.peak_memory_bytes);
    if (result.overloaded) {
      report.overloaded = true;
      break;
    }
    carryover[0] += program->ResidualBytes(0);
    if (!result.residual_bytes_per_machine.empty()) {
      carryover[0] += result.residual_bytes_per_machine[0];
    }
  }

  // Final aggregation: every machine ships its n-vector of partial results
  // to the master, which folds them (tree reduction would halve the bytes;
  // the paper's bars show a visible but modest aggregation share, matching
  // the flat gather modelled here).
  double result_bytes = static_cast<double>(dataset_.graph.NumVertices()) *
                        options_.result_record_bytes * dataset_.scale;
  double gather_bytes = result_bytes * (machines - 1);
  report.aggregation_seconds =
      gather_bytes / options_.cluster.machine.network_bandwidth +
      options_.cost.seconds_per_message *
          static_cast<double>(dataset_.graph.NumVertices()) * dataset_.scale *
          machines /
          std::max(1.0, options_.cluster.machine.cores *
                            options_.cost.core_utilization);

  if (report.overloaded) {
    report.algorithm_seconds =
        std::max(report.algorithm_seconds,
                 options_.cost.overload_cutoff_seconds);
  }
  return report;
}

}  // namespace vcmp
