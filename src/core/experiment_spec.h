#ifndef VCMP_CORE_EXPERIMENT_SPEC_H_
#define VCMP_CORE_EXPERIMENT_SPEC_H_

#include <string>
#include <vector>

#include "common/ini.h"
#include "common/result.h"
#include "core/batch_schedule.h"
#include "core/runner.h"
#include "metrics/run_report.h"

namespace vcmp {

class Tracer;

/// A declarative experiment: everything needed to run one simulated
/// multi-processing job, loadable from an INI file (configs/*.ini). This
/// is how saved experiment suites are replayed without recompiling:
///
///   [fig04-heavy]
///   dataset  = DBLP
///   task     = BPPR
///   system   = Pregel+
///   cluster  = galaxy        # galaxy | galaxy27 | docker
///   machines = 8             # optional override
///   workload = 12288
///   schedule = equal:4       # equal:K | twobatch:DELTA |
///                            # geometric:K,RATIO | tuned | search
///   scale    = 64            # optional stand-in scale override
///   seed     = 1
struct ExperimentSpec {
  std::string name;
  std::string dataset = "DBLP";
  std::string task = "BPPR";
  std::string system = "Pregel+";
  std::string cluster = "galaxy";
  uint32_t machines = 0;  // 0 = the cluster preset's count.
  double workload = 1024.0;
  std::string schedule = "equal:1";
  double scale = 0.0;  // 0 = dataset default.
  uint64_t seed = 1;
  uint32_t threads = 0;  // 0 = auto (hardware cores).
  /// Real out-of-core execution (src/ooc): hard per-machine memory
  /// budget with unit suffixes ("2.5GiB"); empty = off. Requires an
  /// out-of-core system such as GraphD.
  std::string memory_budget;
  /// Spill/state directory for the real out-of-core path; empty = a
  /// fresh temp directory per run.
  std::string ooc_dir;
};

/// Parses every section of an INI document into a spec (section name =
/// experiment name). Unknown keys are an error (typos must not silently
/// fall back to defaults).
Result<std::vector<ExperimentSpec>> ParseExperimentSpecs(
    const IniDocument& document);

/// Outcome of RunExperiment.
struct ExperimentResult {
  ExperimentSpec spec;
  BatchSchedule schedule;
  RunReport report;
};

/// Resolves the spec (dataset stand-in, cluster, system, task, schedule —
/// including `tuned` via the Section-5 tuner and `search` via the
/// batch-count search) and runs it. When `tracer` is set, the main run
/// records onto it under the spec's name (tuner/search probe runs stay
/// untraced — they are exploration, not the experiment).
Result<ExperimentResult> RunExperiment(const ExperimentSpec& spec,
                                       Tracer* tracer = nullptr);

}  // namespace vcmp

#endif  // VCMP_CORE_EXPERIMENT_SPEC_H_
