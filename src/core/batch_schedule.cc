#include "core/batch_schedule.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace vcmp {

BatchSchedule BatchSchedule::Equal(double total, uint32_t batches) {
  VCMP_CHECK(batches > 0);
  VCMP_CHECK(total > 0.0);
  auto total_units = static_cast<uint64_t>(std::llround(total));
  std::vector<double> workloads(batches);
  uint64_t base = total_units / batches;
  uint64_t remainder = total_units % batches;
  for (uint32_t i = 0; i < batches; ++i) {
    workloads[i] = static_cast<double>(base + (i < remainder ? 1 : 0));
  }
  return BatchSchedule(std::move(workloads));
}

BatchSchedule BatchSchedule::FullParallelism(double total) {
  return Equal(total, 1);
}

BatchSchedule BatchSchedule::TwoBatch(double total, double delta) {
  VCMP_CHECK(std::fabs(delta) <= total)
      << "two-batch delta exceeds the total workload";
  double first = (total + delta) / 2.0;
  double second = total - first;
  return BatchSchedule({first, second});
}

BatchSchedule BatchSchedule::GeometricDecay(double total,
                                            uint32_t batches,
                                            double ratio) {
  VCMP_CHECK(batches > 0);
  VCMP_CHECK(total > 0.0);
  VCMP_CHECK(ratio > 0.0 && ratio <= 1.0);
  // Normalise weights ratio^0 .. ratio^(b-1) to the total, keeping
  // workloads integral (the remainder goes to the first batch).
  std::vector<double> weights(batches);
  double weight_sum = 0.0;
  double w = 1.0;
  for (uint32_t i = 0; i < batches; ++i) {
    weights[i] = w;
    weight_sum += w;
    w *= ratio;
  }
  std::vector<double> workloads(batches);
  double assigned = 0.0;
  for (uint32_t i = 0; i < batches; ++i) {
    workloads[i] = std::floor(total * weights[i] / weight_sum);
    assigned += workloads[i];
  }
  workloads[0] += total - assigned;
  return BatchSchedule(std::move(workloads));
}

double BatchSchedule::TotalWorkload() const {
  return std::accumulate(workloads_.begin(), workloads_.end(), 0.0);
}

std::string BatchSchedule::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < workloads_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.0f", workloads_[i]);
  }
  out += "]";
  return out;
}

}  // namespace vcmp
