#ifndef VCMP_CORE_RUNNER_H_
#define VCMP_CORE_RUNNER_H_

#include <functional>
#include <memory>
#include <optional>

#include "common/result.h"
#include "core/batch_schedule.h"
#include "engine/sync_engine.h"
#include "engine/system_profile.h"
#include "graph/datasets.h"
#include "graph/partition.h"
#include "metrics/run_report.h"
#include "sim/cluster_spec.h"
#include "sim/cost_model.h"
#include "tasks/task.h"

namespace vcmp {

class ThreadPool;
class Tracer;

/// Configuration of a multi-processing run.
struct RunnerOptions {
  ClusterSpec cluster = ClusterSpec::Galaxy8();
  SystemKind system = SystemKind::kPregelPlus;
  CostParams cost;
  uint64_t seed = 1;
  /// Query namespace of this run inside a concurrent multi-query batch
  /// (ConcurrentRunner numbers queries 0..K-1). Every per-batch program
  /// seed and per-vertex engine reseed mixes the query id in, so queries
  /// sharing a base seed still draw decorrelated streams. Query 0
  /// reproduces the historical single-query behavior bit for bit.
  uint64_t query_id = 0;
  /// Shared compute pool for the engine's parallel sections. Null (the
  /// default) keeps the historical behavior — each engine run makes a
  /// private pool sized by execution_threads; non-null shares one pool's
  /// workers across concurrent queries.
  ThreadPool* pool = nullptr;
  /// Partition to run over, computed once by the caller and shared across
  /// queries (it depends only on graph + profile + cluster, not on the
  /// query). Must match this runner's profile partitioner and outlive the
  /// runner. Null = partition in the constructor (historical behavior).
  const Partitioning* shared_partition = nullptr;
  uint64_t max_rounds = 4096;
  /// Compute/delivery threads per engine run (results are thread-count
  /// invariant; see EngineOptions::execution_threads). 0 = auto: one
  /// thread per hardware core, capped by the machine count.
  uint32_t execution_threads = 0;
  /// Passed through to EngineOptions::clamp_threads_to_hardware. True
  /// (the default) silently caps execution_threads at the hardware
  /// concurrency; benchmarks that must measure the *requested*
  /// configuration (e.g. an 8-thread sweep on a small CI box) set it
  /// false and record both numbers.
  bool clamp_threads_to_hardware = true;
  /// Pregel checkpointing every N rounds (0 = off); applied per batch.
  uint64_t checkpoint_interval_rounds = 0;
  /// Collect real per-phase engine times (see EngineOptions).
  bool collect_phase_times = false;
  /// Engine-level sender-side combining (EngineOptions::sender_combining):
  /// exploit the task's combiner on the send path even when the system
  /// profile does not combine. Task results are bit-identical either way;
  /// wire/buffer statistics shrink by the reported combined_ratio.
  bool sender_combining = false;
  /// Replaces the canonical profile for `system` (ablation studies).
  std::optional<SystemProfile> profile_override;
  /// Real out-of-core execution (src/ooc): when ooc.enabled, every batch
  /// runs under the hard per-machine memory budget with real spill files
  /// and a bounded vertex cache, and the report carries measured spilled
  /// bytes. Requires an out-of-core system profile (GraphD).
  OocOptions ooc;
  /// Called with each batch's finished program (result aggregation).
  std::function<void(const VertexProgram&)> batch_observer;
  /// Called with each batch's raw EngineResult (phase times, round trace)
  /// before it is folded into the RunReport.
  std::function<void(const EngineResult&)> engine_observer;
  /// Residual memory already resident on each machine before batch 1
  /// (paper-scale bytes). The serving layer seeds this with the unflushed
  /// residuals of other in-flight jobs so their footprint counts toward
  /// overload exactly like the run's own carryover. Empty = zero.
  std::vector<double> initial_residual_bytes;
  /// Called after every batch with the accumulated per-machine residual
  /// (paper-scale bytes, including initial_residual_bytes) — the
  /// mid-workload observation point the online batcher inverts the
  /// memory models against.
  std::function<void(uint64_t batch_index,
                     const std::vector<double>& residual_bytes)>
      residual_observer;
  /// --- Observability (src/obs) ---
  /// When set, the runner registers two tracks under the `trace_label`
  /// process — "batches" (one span per executed batch, plus a
  /// carryover-residual gauge after each) and "engine" (the per-round
  /// spans, batches lined up end to end on one simulated timeline) —
  /// and accumulates flat counters (runner.batches, runner.seconds,
  /// engine.*) that reconcile exactly with the RunReport. Null = off.
  Tracer* tracer = nullptr;
  /// Trace "process" name grouping this run's tracks (suite drivers set
  /// it to the experiment name so runs stay distinguishable).
  std::string trace_label = "run";
};

/// Executes a multi-processing task under a batch schedule: batches run
/// sequentially on the chosen VC-system, residual memory accumulates
/// across batches (Section 5 "the intermediate results of the i-th batch
/// have to be stored for final result aggregation"), and the report
/// aggregates the paper's monitored statistics.
class MultiProcessingRunner {
 public:
  /// `dataset` must outlive the runner.
  MultiProcessingRunner(const Dataset& dataset, RunnerOptions options);

  MultiProcessingRunner(const MultiProcessingRunner&) = delete;
  MultiProcessingRunner& operator=(const MultiProcessingRunner&) = delete;

  /// Runs all batches. A batch that overloads marks the run overloaded and
  /// stops execution (the paper bills such runs at the 6000 s cut-off).
  /// Zero-workload batches are skipped.
  Result<RunReport> Run(const MultiTask& task, const BatchSchedule& schedule);

  const SystemProfile& profile() const { return profile_; }
  const Partitioning& partition() const { return *partition_; }

 private:
  const Dataset& dataset_;
  RunnerOptions options_;
  SystemProfile profile_;
  /// Owned partition when options_.shared_partition is null; unused
  /// otherwise (partition_ then aliases the caller's).
  Partitioning owned_partition_;
  const Partitioning* partition_;
};

}  // namespace vcmp

#endif  // VCMP_CORE_RUNNER_H_
