#ifndef VCMP_CORE_WHOLE_GRAPH_H_
#define VCMP_CORE_WHOLE_GRAPH_H_

#include <vector>

#include "common/result.h"
#include "core/batch_schedule.h"
#include "graph/datasets.h"
#include "sim/cluster_spec.h"
#include "sim/cost_model.h"
#include "tasks/task.h"

namespace vcmp {

/// Options for the whole-graph-access mode (Section 4.9, Fig. 10).
struct WholeGraphOptions {
  ClusterSpec cluster = ClusterSpec::Galaxy8();
  CostParams cost;
  uint64_t seed = 1;
  uint64_t max_rounds = 4096;
  /// Bytes per per-vertex partial result that the final aggregation
  /// all-reduces (8 = packed PPR mass counter).
  double result_record_bytes = 8.0;
};

/// Per-batch and total costs of a whole-graph run.
struct WholeGraphReport {
  double algorithm_seconds = 0.0;
  double aggregation_seconds = 0.0;
  bool overloaded = false;
  double peak_memory_bytes = 0.0;
  uint64_t total_rounds = 0;

  double TotalSeconds() const {
    return algorithm_seconds + aggregation_seconds;
  }
};

/// The alternative deployment of Section 4.9: the graph is replicated to
/// every machine and the *workload* is partitioned instead — each machine
/// runs an independent single-machine VC-system over its workload share,
/// and a final aggregation merges the per-machine partial results.
///
/// Communication vanishes, but every machine must hold the full graph, so
/// the memory-bound state arrives earlier; with a proper batch scheme the
/// mode can still beat default partitioning (Fig. 10).
class WholeGraphRunner {
 public:
  WholeGraphRunner(const Dataset& dataset, WholeGraphOptions options);

  Result<WholeGraphReport> Run(const MultiTask& task,
                               const BatchSchedule& schedule);

 private:
  const Dataset& dataset_;
  WholeGraphOptions options_;
};

}  // namespace vcmp

#endif  // VCMP_CORE_WHOLE_GRAPH_H_
