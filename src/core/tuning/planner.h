#ifndef VCMP_CORE_TUNING_PLANNER_H_
#define VCMP_CORE_TUNING_PLANNER_H_

#include "common/result.h"
#include "core/batch_schedule.h"
#include "core/tuning/memory_fit.h"

namespace vcmp {

/// Planner configuration (the paper's Eq. 1/6 parameters).
struct PlannerOptions {
  /// Overloading parameter p: a machine is overloaded when p percent of
  /// its physical memory is occupied.
  double overload_fraction = 0.85;
  /// Physical memory per machine, M in the paper.
  double machine_memory_bytes = 16.0 * (1ULL << 30);
  /// Safety limits on the produced schedule.
  uint32_t max_batches = 64;
  double min_batch_workload = 1.0;
};

/// Computes the learned batch execution strategy S* = {W1, ..., Wt}
/// (Section 5, "Computing W_j"): each W_{j+1} is the largest workload whose
/// predicted peak memory fits beside the residual memory of everything
/// already processed,
///
///   W_{i+1} = ((p*M - Mres(sum W_j) - c1) / a1)^(1/b1),       (Eq. 6)
///
/// iterated until the total workload W is covered. Returns
/// FailedPrecondition when even the minimum batch cannot fit (residual
/// memory alone exceeds the budget).
Result<BatchSchedule> PlanSchedule(const MemoryModels& models,
                                   double total_workload,
                                   const PlannerOptions& options = {});

}  // namespace vcmp

#endif  // VCMP_CORE_TUNING_PLANNER_H_
