#include "core/tuning/planner.h"

#include <algorithm>
#include <cmath>

namespace vcmp {

Result<BatchSchedule> PlanSchedule(const MemoryModels& models,
                                   double total_workload,
                                   const PlannerOptions& options) {
  if (total_workload < 1.0) {
    return Status::InvalidArgument("total workload must be >= 1");
  }
  const double budget =
      options.overload_fraction * options.machine_memory_bytes;

  std::vector<double> workloads;
  double processed = 0.0;
  while (processed < total_workload) {
    if (workloads.size() >= options.max_batches) {
      // Schedule exploded: residual growth never lets the remainder fit.
      return Status::FailedPrecondition(
          "planned schedule exceeds the batch limit; the workload cannot "
          "fit under the memory budget");
    }
    // Eq. 5: the memory available to the next batch is the budget minus
    // the residual footprint of everything processed so far.
    double residual = processed > 0.0 ? models.residual.Eval(processed) : 0.0;
    double available = budget - residual;
    double next = models.peak.Invert(available);
    next = std::floor(next);
    double remaining = total_workload - processed;
    next = std::min(next, remaining);
    if (next < options.min_batch_workload) {
      if (remaining <= options.min_batch_workload) {
        next = remaining;  // Tail crumb: absorb it.
      } else {
        return Status::FailedPrecondition(
            "residual memory alone exceeds the budget before the workload "
            "is fully scheduled");
      }
    }
    workloads.push_back(next);
    processed += next;
  }
  return BatchSchedule(std::move(workloads));
}

}  // namespace vcmp
