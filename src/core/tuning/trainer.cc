#include "core/tuning/trainer.h"

#include <algorithm>

namespace vcmp {

Trainer::Trainer(const Dataset& dataset, RunnerOptions runner_options)
    : dataset_(dataset), runner_options_(std::move(runner_options)) {}

Result<std::vector<TrainingSample>> Trainer::CollectSamples(
    const MultiTask& task, double target_workload,
    const TrainerOptions& options) {
  if (target_workload < 4.0) {
    return Status::InvalidArgument("target workload too small to train on");
  }

  std::vector<double> workloads;
  double w = 2.0 * options.workload_base;
  while (workloads.size() < options.max_points &&
         (w <= options.max_fraction * target_workload ||
          workloads.size() < options.min_points)) {
    if (w >= target_workload) break;  // Never train above the target.
    workloads.push_back(w);
    w *= 2.0;
  }
  if (workloads.size() < 3) {
    return Status::FailedPrecondition(
        "not enough headroom below the target workload to train");
  }

  std::vector<TrainingSample> samples;
  samples.reserve(workloads.size());
  for (double workload : workloads) {
    // Fresh runner per sample: training runs are independent 1-batch jobs.
    RunnerOptions run_options = runner_options_;
    double final_residual = 0.0;
    run_options.residual_observer =
        [&](uint64_t, const std::vector<double>& residual_bytes) {
          for (double bytes : residual_bytes) {
            final_residual = std::max(final_residual, bytes);
          }
        };
    MultiProcessingRunner runner(dataset_, run_options);
    VCMP_ASSIGN_OR_RETURN(
        RunReport report,
        runner.Run(task, BatchSchedule::FullParallelism(workload)));
    TrainingSample sample;
    sample.workload = workload;
    sample.peak_memory_bytes = report.peak_memory_bytes;
    sample.residual_memory_bytes = final_residual;
    sample.seconds = report.total_seconds;
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace vcmp
