#ifndef VCMP_CORE_TUNING_MEMORY_FIT_H_
#define VCMP_CORE_TUNING_MEMORY_FIT_H_

#include <string>
#include <vector>

#include "common/math/lma.h"
#include "common/result.h"

namespace vcmp {

/// One training observation: a light workload and the memory statistics it
/// produced (Section 5, "Training").
struct TrainingSample {
  double workload = 0.0;
  /// Max per-machine peak memory of a fresh 1-batch run: y_r.
  double peak_memory_bytes = 0.0;
  /// Max per-machine residual memory after the run completes: y'_r.
  double residual_memory_bytes = 0.0;
  double seconds = 0.0;
};

/// The paper's Eq. 2 pair: M*(W) = a1*W^b1 + c1 (peak memory) and
/// Mres(W) = a2*W^b2 + c2 (residual memory), fitted with
/// Levenberg–Marquardt.
struct MemoryModels {
  PowerLawFit peak;
  PowerLawFit residual;

  std::string ToString() const;
};

/// Fits both exponential models to the training samples. Needs >= 3
/// samples with positive workloads.
Result<MemoryModels> FitMemoryModels(
    const std::vector<TrainingSample>& samples,
    const LmaOptions& options = {});

}  // namespace vcmp

#endif  // VCMP_CORE_TUNING_MEMORY_FIT_H_
