#include "core/tuning/disk_planner.h"

#include <algorithm>
#include <cmath>

namespace vcmp {

DiskTuner::DiskTuner(const Dataset& dataset, RunnerOptions runner_options)
    : dataset_(dataset), runner_options_(std::move(runner_options)) {}

Result<DiskTuner::Plan> DiskTuner::Tune(const MultiTask& task,
                                        double total_workload,
                                        const DiskPlannerOptions& options) {
  if (total_workload < 4.0) {
    return Status::InvalidArgument("target workload too small to train on");
  }
  const SystemProfile& profile =
      runner_options_.profile_override.has_value()
          ? *runner_options_.profile_override
          : ProfileFor(runner_options_.system);
  if (!profile.out_of_core) {
    return Status::FailedPrecondition(
        "the disk-bound tuner targets out-of-core systems; use Tuner for "
        "in-memory ones");
  }

  Plan plan;
  // Training: doubling light workloads, 1 batch each, recording the
  // peak per-round buffered-message demand.
  double w = 2.0;
  while (plan.samples.size() < 8 &&
         (w <= 0.25 * total_workload || plan.samples.size() < 4)) {
    if (w >= total_workload) break;
    MultiProcessingRunner runner(dataset_, runner_options_);
    VCMP_ASSIGN_OR_RETURN(
        RunReport report,
        runner.Run(task, BatchSchedule::FullParallelism(w)));
    Sample sample;
    sample.workload = w;
    sample.buffered_bytes = report.peak_buffered_bytes;
    sample.seconds = report.total_seconds;
    plan.samples.push_back(sample);
    plan.training_seconds += sample.seconds;
    w *= 2.0;
  }
  if (plan.samples.size() < 3) {
    return Status::FailedPrecondition(
        "not enough headroom below the target workload to train");
  }

  std::vector<double> xs;
  std::vector<double> ys;
  for (const Sample& sample : plan.samples) {
    xs.push_back(sample.workload);
    ys.push_back(sample.buffered_bytes);
  }
  VCMP_ASSIGN_OR_RETURN(plan.buffer_model, FitPowerLaw(xs, ys));

  // The largest per-batch workload whose buffered demand stays below the
  // saturation edge.
  double edge = options.max_buffer_budget_ratio * profile.ooc_budget_bytes;
  double max_batch_workload = plan.buffer_model.Invert(edge);
  uint32_t batches = 1;
  if (max_batch_workload >= 1.0 &&
      max_batch_workload < total_workload) {
    batches = static_cast<uint32_t>(
        std::ceil(total_workload / max_batch_workload));
  } else if (max_batch_workload < 1.0) {
    // Even one workload unit saturates: cap at the batch limit.
    batches = options.max_batches;
  }
  batches = std::min(batches, options.max_batches);
  batches = std::max(batches, 1u);
  plan.schedule = BatchSchedule::Equal(total_workload, batches);
  return plan;
}

}  // namespace vcmp
