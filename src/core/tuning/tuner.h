#ifndef VCMP_CORE_TUNING_TUNER_H_
#define VCMP_CORE_TUNING_TUNER_H_

#include <vector>

#include "common/result.h"
#include "core/batch_schedule.h"
#include "core/runner.h"
#include "core/tuning/memory_fit.h"
#include "core/tuning/planner.h"
#include "core/tuning/trainer.h"

namespace vcmp {

/// Output of the end-to-end tuning pipeline.
struct TunedPlan {
  std::vector<TrainingSample> samples;
  MemoryModels models;
  BatchSchedule schedule;
  /// Wall-clock spent on the training runs (simulated; the paper requires
  /// it to be minor relative to evaluation).
  double training_seconds = 0.0;
};

/// The learning-based tuning framework of Section 5: train on light
/// doubling workloads, fit the exponential memory models with LMA, and
/// derive the concurrency scheme via Eq. 6. Falls back to Full-Parallelism
/// when the fit predicts that even the full workload fits in memory.
class Tuner {
 public:
  Tuner(const Dataset& dataset, RunnerOptions runner_options);

  /// Produces the optimized schedule for `total_workload`.
  Result<TunedPlan> Tune(const MultiTask& task, double total_workload,
                         const TrainerOptions& trainer_options = {},
                         const PlannerOptions& planner_options = {});

 private:
  const Dataset& dataset_;
  RunnerOptions runner_options_;
};

}  // namespace vcmp

#endif  // VCMP_CORE_TUNING_TUNER_H_
