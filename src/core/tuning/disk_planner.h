#ifndef VCMP_CORE_TUNING_DISK_PLANNER_H_
#define VCMP_CORE_TUNING_DISK_PLANNER_H_

#include "common/math/lma.h"
#include "common/result.h"
#include "core/batch_schedule.h"
#include "core/runner.h"

namespace vcmp {

/// Options for the out-of-core (disk-bound) tuner.
struct DiskPlannerOptions {
  /// Per-batch buffered-message demand is kept below this multiple of the
  /// system's spill budget. Past ~1.6x the budget, the spill volume
  /// outruns the overlap window and the disk saturates (the >100%
  /// utilisation regime of Table 3); the optimization strategy of
  /// Section 4.4 is to stop shrinking batches right at that edge.
  double max_buffer_budget_ratio = 1.6;
  uint32_t max_batches = 1024;
};

/// The second tuning case study (the paper's additional materials): a
/// cost-based batch planner for OUT-OF-CORE systems. Unlike the
/// memory-bound planner of Section 5, GraphD is insensitive to residual
/// memory (buffers are capped by the budget) and is instead governed by
/// per-round disk saturation, so the learned model is the per-batch
/// buffered-message demand Mbuf(W) = a*W^b + c, and the schedule is the
/// smallest EQUAL split whose per-batch demand stays below the saturation
/// edge — matching the paper's "minimize the number of batches until
/// per-batch parallelization incurs 100% disk utilization".
class DiskTuner {
 public:
  DiskTuner(const Dataset& dataset, RunnerOptions runner_options);

  /// One training sample: buffered-message demand of a light workload.
  struct Sample {
    double workload = 0.0;
    double buffered_bytes = 0.0;
    double seconds = 0.0;
  };

  /// Output of the pipeline.
  struct Plan {
    std::vector<Sample> samples;
    PowerLawFit buffer_model;
    BatchSchedule schedule;
    double training_seconds = 0.0;
  };

  /// Trains on doubling light workloads, fits Mbuf(W), and returns the
  /// minimal equal split below the saturation edge.
  Result<Plan> Tune(const MultiTask& task, double total_workload,
                    const DiskPlannerOptions& options = {});

 private:
  const Dataset& dataset_;
  RunnerOptions runner_options_;
};

}  // namespace vcmp

#endif  // VCMP_CORE_TUNING_DISK_PLANNER_H_
