#ifndef VCMP_CORE_TUNING_TRAINER_H_
#define VCMP_CORE_TUNING_TRAINER_H_

#include <vector>

#include "common/result.h"
#include "core/runner.h"
#include "core/tuning/memory_fit.h"

namespace vcmp {

/// Training-phase configuration (Section 5, "Training").
struct TrainerOptions {
  /// Train at workloads 2^1 .. 2^h scaled by `workload_base`; h grows
  /// until the next doubling would exceed `max_fraction` of the target
  /// workload, bounded by max_points.
  double workload_base = 1.0;
  uint32_t min_points = 4;
  uint32_t max_points = 8;
  /// Training workloads stay below this fraction of the evaluation
  /// workload W (the paper: W >> 2^h keeps training cost minor).
  double max_fraction = 0.25;
};

/// Runs the light-weight training workloads and collects the runtime
/// statistics the tuner fits (max memory y_r and max residual y'_r).
class Trainer {
 public:
  /// `dataset` must outlive the trainer. `runner_options` describes the
  /// production deployment (cluster, system); training runs use the same.
  Trainer(const Dataset& dataset, RunnerOptions runner_options);

  /// Collects samples at doubling workloads below `target_workload`.
  Result<std::vector<TrainingSample>> CollectSamples(
      const MultiTask& task, double target_workload,
      const TrainerOptions& options = {});

 private:
  const Dataset& dataset_;
  RunnerOptions runner_options_;
};

}  // namespace vcmp

#endif  // VCMP_CORE_TUNING_TRAINER_H_
