#include "core/tuning/tuner.h"

namespace vcmp {

Tuner::Tuner(const Dataset& dataset, RunnerOptions runner_options)
    : dataset_(dataset), runner_options_(std::move(runner_options)) {}

Result<TunedPlan> Tuner::Tune(const MultiTask& task, double total_workload,
                              const TrainerOptions& trainer_options,
                              const PlannerOptions& planner_options) {
  TunedPlan plan;

  Trainer trainer(dataset_, runner_options_);
  VCMP_ASSIGN_OR_RETURN(
      plan.samples,
      trainer.CollectSamples(task, total_workload, trainer_options));
  for (const TrainingSample& sample : plan.samples) {
    plan.training_seconds += sample.seconds;
  }

  VCMP_ASSIGN_OR_RETURN(plan.models, FitMemoryModels(plan.samples));

  PlannerOptions planner = planner_options;
  planner.machine_memory_bytes =
      runner_options_.cluster.machine.memory_bytes;
  auto planned = PlanSchedule(plan.models, total_workload, planner);
  if (planned.ok()) {
    plan.schedule = std::move(planned).value();
  } else if (planned.status().code() == StatusCode::kFailedPrecondition) {
    // Degenerate fit (residual dominates): run everything in one batch and
    // let the operator see the overload rather than fail silently.
    plan.schedule = BatchSchedule::FullParallelism(total_workload);
  } else {
    return planned.status();
  }
  return plan;
}

}  // namespace vcmp
