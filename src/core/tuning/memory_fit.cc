#include "core/tuning/memory_fit.h"

#include "common/string_util.h"

namespace vcmp {

std::string MemoryModels::ToString() const {
  return StrFormat(
      "M*(W) = %.3g * W^%.3f + %.3g ; Mres(W) = %.3g * W^%.3f + %.3g",
      peak.a, peak.b, peak.c, residual.a, residual.b, residual.c);
}

Result<MemoryModels> FitMemoryModels(
    const std::vector<TrainingSample>& samples, const LmaOptions& options) {
  if (samples.size() < 3) {
    return Status::InvalidArgument(
        "memory-model fitting needs at least 3 training samples");
  }
  std::vector<double> workloads;
  std::vector<double> peaks;
  std::vector<double> residuals;
  workloads.reserve(samples.size());
  for (const TrainingSample& sample : samples) {
    workloads.push_back(sample.workload);
    peaks.push_back(sample.peak_memory_bytes);
    residuals.push_back(sample.residual_memory_bytes);
  }
  MemoryModels models;
  VCMP_ASSIGN_OR_RETURN(models.peak,
                        FitPowerLaw(workloads, peaks, options));
  VCMP_ASSIGN_OR_RETURN(models.residual,
                        FitPowerLaw(workloads, residuals, options));
  return models;
}

}  // namespace vcmp
