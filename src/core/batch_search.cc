#include "core/batch_search.h"

#include <algorithm>

namespace vcmp {
namespace {

/// Runs one batch count; pushes the probe; returns its simulated seconds
/// (the overload cut-off for overloaded runs, so comparisons stay sane).
Result<double> Probe(const Dataset& dataset,
                     const RunnerOptions& runner_options,
                     const MultiTask& task, double workload,
                     uint32_t batches, BatchSearchResult* out) {
  for (const BatchProbe& probe : out->probes) {
    if (probe.batches == batches) return probe.seconds;  // Memoised.
  }
  MultiProcessingRunner runner(dataset, runner_options);
  VCMP_ASSIGN_OR_RETURN(
      RunReport report,
      runner.Run(task, BatchSchedule::Equal(workload, batches)));
  BatchProbe probe;
  probe.batches = batches;
  probe.seconds = report.total_seconds;
  probe.overloaded = report.overloaded;
  out->probes.push_back(probe);
  return probe.seconds;
}

}  // namespace

Result<BatchSearchResult> FindOptimalBatchCount(
    const Dataset& dataset, const RunnerOptions& runner_options,
    const MultiTask& task, double workload,
    const BatchSearchOptions& options) {
  if (workload < 1.0) {
    return Status::InvalidArgument("workload must be >= 1");
  }
  if (options.max_batches == 0) {
    return Status::InvalidArgument("max_batches must be >= 1");
  }
  BatchSearchResult result;

  // Phase 1: doubling sweep, stopping once times have risen twice in a
  // row past the minimum (unimodal shape).
  uint32_t best = 1;
  double best_seconds = 0.0;
  int rises = 0;
  double previous = 0.0;
  for (uint32_t batches = 1;
       batches <= options.max_batches &&
       batches <= static_cast<uint32_t>(workload);
       batches *= 2) {
    VCMP_ASSIGN_OR_RETURN(
        double seconds,
        Probe(dataset, runner_options, task, workload, batches, &result));
    if (result.probes.size() == 1 || seconds < best_seconds) {
      best = batches;
      best_seconds = seconds;
    }
    rises = (result.probes.size() > 1 && seconds > previous) ? rises + 1 : 0;
    previous = seconds;
    if (rises >= 2) break;
  }

  // Phase 2: refine inside (best/2, best*2) with a shrinking bracket.
  if (options.refine && best > 1) {
    uint32_t lo = std::max(1u, best / 2);
    uint32_t hi = std::min(options.max_batches, best * 2);
    for (uint32_t i = 0; i < options.refinement_probes && hi - lo > 1;
         ++i) {
      uint32_t candidate =
          (i % 2 == 0) ? (lo + best) / 2 : (best + hi) / 2;
      if (candidate == best || candidate < lo || candidate > hi) {
        break;
      }
      VCMP_ASSIGN_OR_RETURN(double seconds,
                            Probe(dataset, runner_options, task, workload,
                                  candidate, &result));
      if (seconds < best_seconds) {
        // Move the bracket around the new optimum.
        if (candidate < best) {
          hi = best;
        } else {
          lo = best;
        }
        best = candidate;
        best_seconds = seconds;
      } else if (candidate < best) {
        lo = candidate;
      } else {
        hi = candidate;
      }
    }
  }

  result.best_batches = best;
  result.best_seconds = best_seconds;
  return result;
}

}  // namespace vcmp
