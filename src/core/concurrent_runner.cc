#include "core/concurrent_runner.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/wall_clock.h"
#include "obs/trace_merge.h"
#include "obs/tracer.h"
#include "ooc/ooc_runtime.h"

namespace vcmp {

namespace {

/// Per-query spill budget: an even split of the configured budget across
/// the K slots, raised to the infeasible floor so a generous total never
/// turns into K infeasible shares. Results are budget-invariant
/// (DESIGN.md section 13), so the split only shifts WHERE bytes spill,
/// never what any query computes — which is what keeps per-query results
/// identical at every concurrency level.
uint64_t SplitOocBudget(uint64_t total, uint32_t concurrency,
                        uint64_t min_feasible) {
  uint64_t share = total / std::max<uint32_t>(concurrency, 1);
  return std::max(share, min_feasible);
}

}  // namespace

ConcurrentRunner::ConcurrentRunner(const Dataset& dataset,
                                   ConcurrentRunnerOptions options)
    : dataset_(dataset),
      options_(std::move(options)),
      profile_(options_.base.profile_override.has_value()
                   ? *options_.base.profile_override
                   : ProfileFor(options_.base.system)) {
  std::unique_ptr<Partitioner> partitioner =
      MakePartitioner(profile_.partitioner);
  partition_ = partitioner->Partition(dataset_.graph,
                                      options_.base.cluster.num_machines);
}

Result<ConcurrentRunReport> ConcurrentRunner::Run(
    const std::vector<ConcurrentQuery>& queries) {
  if (options_.concurrency == 0) {
    return Status::InvalidArgument("concurrency must be at least 1");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("no queries to run");
  }
  for (const ConcurrentQuery& query : queries) {
    if (query.task == nullptr) {
      return Status::InvalidArgument("query has no task");
    }
  }
  if (options_.base.tracer != nullptr || options_.base.pool != nullptr ||
      options_.base.shared_partition != nullptr ||
      options_.base.query_id != 0) {
    return Status::InvalidArgument(
        "base options must leave per-query fields (tracer, pool, "
        "shared_partition, query_id) unset");
  }
  if (options_.base.batch_observer || options_.base.engine_observer ||
      options_.base.residual_observer) {
    return Status::InvalidArgument(
        "per-batch observers are not supported on concurrent runs (they "
        "would execute on several driver threads at once)");
  }

  const uint32_t concurrency = options_.concurrency;
  // Thread budget: the K driver threads each execute their query's
  // serial sections and act as the calling participant of its parallel
  // sections, so they count toward the configured thread total; the
  // shared pool supplies the rest. ParallelFor's per-call completion
  // latches keep the queries' fan-outs independent on the shared
  // workers.
  const uint32_t total_threads = ThreadPool::ResolveThreads(
      options_.base.execution_threads, /*clamp_to_hardware=*/false);
  const uint32_t pool_workers =
      total_threads > concurrency ? total_threads - concurrency : 0;
  ThreadPool pool(pool_workers);

  // The infeasible floor for the per-query spill-budget split, computed
  // once: it depends on the vertex placement and cache geometry, not on
  // the query.
  uint64_t min_ooc_budget = 0;
  if (options_.base.ooc.enabled &&
      options_.base.ooc.memory_budget_bytes != 0) {
    std::vector<std::vector<VertexId>> vertices_by_machine(
        partition_.num_machines);
    for (VertexId v = 0; v < dataset_.graph.NumVertices(); ++v) {
      vertices_by_machine[partition_.MachineOf(v)].push_back(v);
    }
    OocRuntime::Setup setup;
    setup.options = options_.base.ooc;
    setup.machines = partition_.num_machines;
    setup.stat_scale = dataset_.scale;
    setup.bytes_per_message = profile_.bytes_per_message;
    setup.message_memory_overhead = profile_.message_memory_overhead;
    min_ooc_budget =
        OocRuntime::MinFeasibleBudgetBytes(setup, vertices_by_machine);
  }

  ConcurrentRunReport report;
  report.queries.resize(queries.size());
  // Private tracer per query (the recorder is not thread-safe), merged
  // in query order below. deque: Tracer is neither movable nor copyable.
  std::deque<Tracer> tracers;
  if (options_.tracer != nullptr) {
    for (size_t i = 0; i < queries.size(); ++i) tracers.emplace_back();
  }

  const uint64_t start_ns = wallclock::NowNs();
  // Static round-robin interleaving: driver slot s executes queries
  // s, s+K, s+2K, ... in index order. Which queries are in flight
  // together is a pure function of (index, K); no slot ever races
  // another for a query, so the outcome vector needs no locking.
  const auto drive_slot = [&](uint32_t slot) {
    for (size_t i = slot; i < queries.size(); i += concurrency) {
      const ConcurrentQuery& query = queries[i];
      RunnerOptions opts = options_.base;
      opts.query_id = i;
      opts.pool = &pool;
      opts.shared_partition = &partition_;
      if (options_.tracer != nullptr) {
        opts.tracer = &tracers[i];
        opts.trace_label = query.label.empty()
                               ? StrFormat("q%zu", i)
                               : query.label;
      }
      if (opts.ooc.enabled) {
        // Disjoint spill directories; an empty base directory already
        // yields a unique temp dir per engine run.
        if (!opts.ooc.directory.empty()) {
          opts.ooc.directory += StrFormat("/q%zu", i);
        }
        if (opts.ooc.memory_budget_bytes != 0) {
          opts.ooc.memory_budget_bytes = SplitOocBudget(
              opts.ooc.memory_budget_bytes, concurrency, min_ooc_budget);
        }
      }
      MultiProcessingRunner runner(dataset_, std::move(opts));
      Result<RunReport> outcome = runner.Run(*query.task, query.schedule);
      if (outcome.ok()) {
        report.queries[i].report = std::move(outcome.value());
      } else {
        report.queries[i].status = outcome.status();
      }
    }
  };

  if (concurrency == 1) {
    drive_slot(0);  // Serial: no reason to spawn a driver thread.
  } else {
    std::vector<std::thread> drivers;
    const uint32_t slots = static_cast<uint32_t>(
        std::min<size_t>(concurrency, queries.size()));
    drivers.reserve(slots);
    for (uint32_t s = 0; s < slots; ++s) {
      drivers.emplace_back(drive_slot, s);
    }
    for (std::thread& driver : drivers) driver.join();
  }
  report.wall_seconds = wallclock::SecondsSince(start_ns);

  if (options_.tracer != nullptr) {
    for (const Tracer& tracer : tracers) {
      MergeTraceInto(*options_.tracer, tracer);
    }
  }
  for (const QueryOutcome& outcome : report.queries) {
    if (!outcome.status.ok()) {
      ++report.queries_failed;
      continue;
    }
    report.total_simulated_seconds += outcome.report.total_seconds;
    report.max_simulated_seconds = std::max(report.max_simulated_seconds,
                                            outcome.report.total_seconds);
    report.any_overloaded |= outcome.report.overloaded;
  }
  return report;
}

}  // namespace vcmp
