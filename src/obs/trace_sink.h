#ifndef VCMP_OBS_TRACE_SINK_H_
#define VCMP_OBS_TRACE_SINK_H_

#include <string>

#include "common/result.h"
#include "obs/tracer.h"

namespace vcmp {

/// Serialises a recorded trace as Chrome trace-event JSON (the "JSON
/// Object Format"), loadable by Perfetto (ui.perfetto.dev) and
/// chrome://tracing:
///
///   {
///     "schema_version": ...,          // shared vcmp export version
///     "displayTimeUnit": "ms",
///     "traceEvents": [ ... ],         // M/B/E/i/C events, ts in µs
///     "counters": { ... }             // flat Add()/Peak() snapshot,
///   }                                 //   keys sorted
///
/// Tracks map to (pid, tid) pairs: every distinct process name becomes a
/// pid (first-registration order), every track a tid, both labelled with
/// "M" metadata events. Timestamps are simulated seconds scaled to
/// microseconds, printed with round-trip %.17g — the whole byte stream is
/// a pure function of the recorded events, which is what the golden-trace
/// tests (same spec, any thread count => identical bytes) rely on.
std::string TraceToJson(const Tracer& tracer);

/// Writes TraceToJson(tracer) to `path`.
Status WriteTraceJson(const Tracer& tracer, const std::string& path);

}  // namespace vcmp

#endif  // VCMP_OBS_TRACE_SINK_H_
