#include "obs/shard_spans.h"

#include <algorithm>

#include "obs/tracer.h"

namespace vcmp {
namespace obs {

void EmitShardSpans(Tracer& tracer, uint32_t track, double t0,
                    double duration, uint32_t shards_per_machine,
                    std::span<const double> staged_messages) {
  double total = 0.0;
  for (double w : staged_messages) total += w;
  if (total <= 0.0 || duration <= 0.0 || shards_per_machine == 0) return;
  // Sequential proportional children: cursor advances by each shard's
  // share, clamped into the parent interval so FP rounding of the last
  // share cannot escape the enclosing span.
  const double t_end = t0 + duration;
  double t = t0;
  for (size_t i = 0; i < staged_messages.size(); ++i) {
    const double weight = staged_messages[i];
    if (weight <= 0.0) continue;
    const uint32_t machine =
        static_cast<uint32_t>(i) / shards_per_machine;
    const uint32_t shard = static_cast<uint32_t>(i) % shards_per_machine;
    const double next =
        std::min(t + duration * (weight / total), t_end);
    tracer.Begin(track, "shard", t,
                 {{"machine", static_cast<double>(machine)},
                  {"shard", static_cast<double>(shard)},
                  {"staged_messages", weight}});
    t = next;
    tracer.End(track, t);
  }
}

}  // namespace obs
}  // namespace vcmp
