#ifndef VCMP_OBS_SHARD_SPANS_H_
#define VCMP_OBS_SHARD_SPANS_H_

#include <cstdint>
#include <span>

namespace vcmp {

class Tracer;

namespace obs {

/// Emits one child span per (machine, shard) inside an open compute span.
///
/// `staged_messages` is machine-major (machine * shards_per_machine +
/// shard) and holds the shard's staged message count for the round — an
/// integer-valued statistic, so the subdivision is bit-identical across
/// thread counts like every other trace payload. The interval
/// [t0, t0 + duration] is split proportionally to the weights, in fixed
/// index order; zero-weight shards emit nothing. The caller must hold the
/// enclosing span open on `track` (Begin before, End after).
void EmitShardSpans(Tracer& tracer, uint32_t track, double t0,
                    double duration, uint32_t shards_per_machine,
                    std::span<const double> staged_messages);

}  // namespace obs
}  // namespace vcmp

#endif  // VCMP_OBS_SHARD_SPANS_H_
