#include "obs/trace_merge.h"

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace vcmp {

void MergeTraceInto(Tracer& destination, const Tracer& source) {
  std::vector<uint32_t> track_map;
  track_map.reserve(source.tracks().size());
  for (const TraceTrack& track : source.tracks()) {
    track_map.push_back(destination.AddTrack(track.process, track.thread));
  }
  for (const TraceEvent& event : source.events()) {
    VCMP_CHECK(event.track < track_map.size());
    const uint32_t track = track_map[event.track];
    switch (event.kind) {
      case TraceEvent::Kind::kBegin:
        destination.Begin(track, event.name, event.ts_seconds, event.args);
        break;
      case TraceEvent::Kind::kEnd:
        destination.End(track, event.ts_seconds, event.args);
        break;
      case TraceEvent::Kind::kInstant:
        destination.Instant(track, event.name, event.ts_seconds,
                            event.args);
        break;
      case TraceEvent::Kind::kGauge:
        destination.Gauge(track, event.name, event.ts_seconds, event.value);
        break;
    }
  }
  for (const auto& [name, value] : source.counters()) {
    if (source.counter_is_peak(name)) {
      destination.Peak(name, value);
    } else {
      destination.Add(name, value);
    }
  }
}

}  // namespace vcmp
