#ifndef VCMP_OBS_TRACE_MERGE_H_
#define VCMP_OBS_TRACE_MERGE_H_

#include "obs/tracer.h"

namespace vcmp {

/// Replays everything recorded in `source` into `destination`: tracks are
/// re-registered (ids remapped densely in source order), events replayed
/// through the normal emission calls (so span-balance invariants stay
/// checked), and flat counters folded by their kind — Add counters sum,
/// Peak counters max.
///
/// The concurrent runner gives each query a private tracer (the recorder
/// is not thread-safe) and merges them in query order after all queries
/// finish, so the merged trace — bytes included — is a pure function of
/// the per-query traces and never of scheduling timing.
void MergeTraceInto(Tracer& destination, const Tracer& source);

}  // namespace vcmp

#endif  // VCMP_OBS_TRACE_MERGE_H_
