#ifndef VCMP_OBS_TRACER_H_
#define VCMP_OBS_TRACER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vcmp {

/// One key/value annotation on a trace event. Values are numeric only:
/// every annotation the engines emit is a statistic, and an all-double
/// payload keeps recording allocation-light and the export byte-stable.
using TraceArg = std::pair<std::string, double>;

/// One recorded event. Timestamps are SIMULATED seconds (engine round
/// time, runner batch time, service clock) — never wall time — so a
/// trace's bytes are a pure function of the run's inputs: the same spec
/// produces the same trace on any machine at any thread count.
struct TraceEvent {
  enum class Kind : uint8_t {
    kBegin,    // Opens a span on a track (nestable).
    kEnd,      // Closes the innermost open span on the track.
    kInstant,  // A point event.
    kGauge,    // A sampled value (exported as a Chrome counter event).
  };

  Kind kind = Kind::kInstant;
  uint32_t track = 0;
  double ts_seconds = 0.0;
  std::string name;   // Empty for kEnd.
  double value = 0.0;  // kGauge only.
  std::vector<TraceArg> args;
};

/// A timeline the events land on; exported as one Chrome trace thread.
/// Tracks sharing a `process` name render grouped in Perfetto.
struct TraceTrack {
  std::string process;
  std::string thread;
};

/// The deterministic trace recorder.
///
/// Usage contract (kept cheap enough for engine hot paths):
///  - Instrumented code holds a `Tracer*` that is null when tracing is
///    off; every emission site guards on the pointer, so the disabled
///    cost is one predictable branch and no call.
///  - Spans nest per track: End() closes the innermost Begin() on that
///    track, and it is a checked error to End() with no span open.
///  - Timestamps must come from a simulated clock. The recorder does not
///    read wall time, ever.
///
/// Besides the event stream, the tracer keeps a flat counter map —
/// Add() accumulates, Peak() keeps a running max — which the test suite
/// reconciles exactly (bitwise, not approximately) against RunReport and
/// ServiceReport aggregates. Instrumentation therefore mirrors the
/// reports' own accumulation order: one Add() per batch, not per round.
class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers a timeline. Ids are dense and assigned in call order, so
  /// registration order must itself be deterministic.
  uint32_t AddTrack(std::string process, std::string thread);

  void Begin(uint32_t track, std::string name, double ts_seconds,
             std::vector<TraceArg> args = {});
  void End(uint32_t track, double ts_seconds,
           std::vector<TraceArg> args = {});
  void Instant(uint32_t track, std::string name, double ts_seconds,
               std::vector<TraceArg> args = {});
  void Gauge(uint32_t track, std::string name, double ts_seconds,
             double value);

  /// Flat counters (no timestamp): Add accumulates a running sum, Peak a
  /// running max. Keys are exported sorted. Mixing Add and Peak on one
  /// key is a checked error — the kind decides how MergeTraceInto folds
  /// the counter across per-query tracers (sum vs max).
  void Add(const std::string& counter, double delta);
  void Peak(const std::string& counter, double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<TraceTrack>& tracks() const { return tracks_; }
  const std::map<std::string, double>& counters() const {
    return counters_;
  }
  /// Value of one flat counter (0.0 when never touched).
  double counter(const std::string& name) const;
  /// True when `name` is a Peak (running-max) counter; false for Add
  /// counters and names never touched.
  bool counter_is_peak(const std::string& name) const;

  /// Open (begun, not yet ended) spans on `track`; 0 for a balanced
  /// trace. The invariant tests assert this is 0 on every track after a
  /// run.
  uint32_t open_spans(uint32_t track) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<TraceTrack> tracks_;
  std::vector<uint32_t> open_depth_;  // Parallel to tracks_.
  std::map<std::string, double> counters_;
  /// Keys ever passed to Peak(); all other counters fold by summing.
  std::map<std::string, bool> counter_is_peak_;
};

}  // namespace vcmp

#endif  // VCMP_OBS_TRACER_H_
