#include "obs/trace_sink.h"

#include <map>

#include "metrics/export.h"

namespace vcmp {
namespace {

constexpr double kMicrosPerSecond = 1e6;

std::string ArgsToJson(const std::vector<TraceArg>& args) {
  if (args.empty()) return {};  // Omit the "args" key entirely.
  JsonWriter json(/*with_schema_version=*/false);
  for (const TraceArg& arg : args) json.Field(arg.first, arg.second);
  return json.Close();
}

/// Emits one trace event object. `name` may be null (E events), `scope`
/// may be null (everything but instants), `args_json` empty when absent.
std::string EventToJson(const char* name, const char* phase, double ts_us,
                        uint64_t pid, uint64_t tid, const char* scope,
                        const std::string& args_json) {
  JsonWriter json(/*with_schema_version=*/false);
  if (name != nullptr) json.Field("name", name);
  json.Field("ph", phase);
  json.Field("ts", ts_us);
  json.Field("pid", pid);
  json.Field("tid", tid);
  if (scope != nullptr) json.Field("s", scope);
  if (!args_json.empty()) json.RawField("args", args_json);
  return json.Close();
}

}  // namespace

std::string TraceToJson(const Tracer& tracer) {
  const std::vector<TraceTrack>& tracks = tracer.tracks();

  // pid per distinct process name, first-registration order; tid per
  // track. Both 1-based (Perfetto reserves 0 for the default process).
  std::vector<uint64_t> pid_of_track(tracks.size(), 0);
  std::map<std::string, uint64_t> pid_by_process;
  std::vector<std::string> processes_in_order;
  for (size_t i = 0; i < tracks.size(); ++i) {
    auto [it, inserted] = pid_by_process.emplace(
        tracks[i].process, pid_by_process.size() + 1);
    if (inserted) processes_in_order.push_back(tracks[i].process);
    pid_of_track[i] = it->second;
  }

  std::string events = "[";
  bool first = true;
  auto append = [&events, &first](const std::string& event_json) {
    if (!first) events += ",";
    first = false;
    events += event_json;
  };

  // Metadata: label every process and track.
  for (const std::string& process : processes_in_order) {
    JsonWriter name_arg(/*with_schema_version=*/false);
    name_arg.Field("name", process);
    JsonWriter json(/*with_schema_version=*/false);
    json.Field("name", "process_name");
    json.Field("ph", "M");
    json.Field("pid", pid_by_process.at(process));
    json.RawField("args", name_arg.Close());
    append(json.Close());
  }
  for (size_t i = 0; i < tracks.size(); ++i) {
    JsonWriter name_arg(/*with_schema_version=*/false);
    name_arg.Field("name", tracks[i].thread);
    JsonWriter json(/*with_schema_version=*/false);
    json.Field("name", "thread_name");
    json.Field("ph", "M");
    json.Field("pid", pid_of_track[i]);
    json.Field("tid", static_cast<uint64_t>(i + 1));
    json.RawField("args", name_arg.Close());
    append(json.Close());
  }

  for (const TraceEvent& event : tracer.events()) {
    const double ts_us = event.ts_seconds * kMicrosPerSecond;
    const uint64_t pid = pid_of_track[event.track];
    const uint64_t tid = event.track + 1;
    switch (event.kind) {
      case TraceEvent::Kind::kBegin:
        append(EventToJson(event.name.c_str(), "B", ts_us, pid, tid,
                           nullptr, ArgsToJson(event.args)));
        break;
      case TraceEvent::Kind::kEnd:
        append(EventToJson(nullptr, "E", ts_us, pid, tid, nullptr,
                           ArgsToJson(event.args)));
        break;
      case TraceEvent::Kind::kInstant:
        append(EventToJson(event.name.c_str(), "i", ts_us, pid, tid, "t",
                           ArgsToJson(event.args)));
        break;
      case TraceEvent::Kind::kGauge: {
        JsonWriter value(/*with_schema_version=*/false);
        value.Field("value", event.value);
        append(EventToJson(event.name.c_str(), "C", ts_us, pid, tid,
                           nullptr, value.Close()));
        break;
      }
    }
  }
  events += "]";

  JsonWriter counters(/*with_schema_version=*/false);
  for (const auto& [name, value] : tracer.counters()) {
    counters.Field(name, value);
  }

  JsonWriter json;  // Stamps the shared schema_version.
  json.Field("displayTimeUnit", "ms");
  json.RawField("traceEvents", events);
  json.RawField("counters", counters.Close());
  return json.Close();
}

Status WriteTraceJson(const Tracer& tracer, const std::string& path) {
  return WriteTextFile(TraceToJson(tracer), path);
}

}  // namespace vcmp
