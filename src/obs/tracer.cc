#include "obs/tracer.h"

#include <algorithm>

#include "common/logging.h"

namespace vcmp {

uint32_t Tracer::AddTrack(std::string process, std::string thread) {
  tracks_.push_back({std::move(process), std::move(thread)});
  open_depth_.push_back(0);
  return static_cast<uint32_t>(tracks_.size() - 1);
}

void Tracer::Begin(uint32_t track, std::string name, double ts_seconds,
                   std::vector<TraceArg> args) {
  VCMP_CHECK(track < tracks_.size()) << "Begin on unregistered track";
  ++open_depth_[track];
  TraceEvent event;
  event.kind = TraceEvent::Kind::kBegin;
  event.track = track;
  event.ts_seconds = ts_seconds;
  event.name = std::move(name);
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void Tracer::End(uint32_t track, double ts_seconds,
                 std::vector<TraceArg> args) {
  VCMP_CHECK(track < tracks_.size()) << "End on unregistered track";
  VCMP_CHECK(open_depth_[track] > 0)
      << "End with no open span on track '" << tracks_[track].thread << "'";
  --open_depth_[track];
  TraceEvent event;
  event.kind = TraceEvent::Kind::kEnd;
  event.track = track;
  event.ts_seconds = ts_seconds;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void Tracer::Instant(uint32_t track, std::string name, double ts_seconds,
                     std::vector<TraceArg> args) {
  VCMP_CHECK(track < tracks_.size()) << "Instant on unregistered track";
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.track = track;
  event.ts_seconds = ts_seconds;
  event.name = std::move(name);
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void Tracer::Gauge(uint32_t track, std::string name, double ts_seconds,
                   double value) {
  VCMP_CHECK(track < tracks_.size()) << "Gauge on unregistered track";
  TraceEvent event;
  event.kind = TraceEvent::Kind::kGauge;
  event.track = track;
  event.ts_seconds = ts_seconds;
  event.name = std::move(name);
  event.value = value;
  events_.push_back(std::move(event));
}

void Tracer::Add(const std::string& counter, double delta) {
  auto [it, inserted] = counter_is_peak_.emplace(counter, false);
  VCMP_CHECK(!it->second)
      << "counter '" << counter << "' mixes Add and Peak";
  counters_[counter] += delta;
}

void Tracer::Peak(const std::string& counter, double value) {
  auto [it, inserted] = counter_is_peak_.emplace(counter, true);
  VCMP_CHECK(it->second)
      << "counter '" << counter << "' mixes Add and Peak";
  double& slot = counters_[counter];
  slot = std::max(slot, value);
}

double Tracer::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

bool Tracer::counter_is_peak(const std::string& name) const {
  auto it = counter_is_peak_.find(name);
  return it != counter_is_peak_.end() && it->second;
}

uint32_t Tracer::open_spans(uint32_t track) const {
  VCMP_CHECK(track < tracks_.size());
  return open_depth_[track];
}

}  // namespace vcmp
