#ifndef VCMP_ENGINE_SYNC_ENGINE_H_
#define VCMP_ENGINE_SYNC_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/mirror_engine.h"
#include "engine/query_context.h"
#include "engine/system_profile.h"
#include "engine/vertex_program.h"
#include "engine/worker.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "metrics/round_stats.h"
#include "ooc/ooc_options.h"
#include "sim/cluster_spec.h"
#include "sim/cost_model.h"

namespace vcmp {

class Tracer;
class OocRuntime;

/// Configuration of one engine execution.
struct EngineOptions {
  ClusterSpec cluster = ClusterSpec::Galaxy8();
  SystemProfile profile;
  CostParams cost;
  /// Dataset scale factor: extensive statistics are multiplied by this so
  /// reduced-scale stand-in graphs report paper-scale numbers.
  double stat_scale = 1.0;
  /// Residual memory carried over from earlier batches, per machine, in
  /// generated-graph-scale bytes (the runner accumulates this). Empty
  /// means zero everywhere.
  std::vector<double> carryover_residual_bytes;
  /// Hard cap on rounds (safety net; programs normally quiesce).
  uint64_t max_rounds = 4096;
  uint64_t seed = 7;
  /// Stop executing once overload is certain (memory overflow or the
  /// simulated clock passing the cut-off); the result is flagged.
  bool stop_early_on_overload = true;
  /// Worker threads for the compute, merge and delivery phases. Results
  /// are bit-identical for any thread count: compute runs over fixed
  /// vertex shards whose outputs land in per-shard arenas and per-vertex
  /// log records, merged and folded in fixed shard/vertex order (see
  /// DESIGN.md section 12). 0 = auto (one thread per hardware core).
  uint32_t execution_threads = 1;
  /// Because results are thread-count invariant, the engine by default
  /// clamps the thread count to the hardware concurrency —
  /// oversubscribing cores only adds context switches without changing
  /// any output. Tests that must run an exact thread count disable this.
  bool clamp_threads_to_hardware = true;
  /// Fixed number of compute shards each machine's round is split into
  /// (contiguous vertex ranges, cut at vertex boundaries). Deliberately
  /// NOT derived from the thread count: the shard plan depends only on
  /// this value and the round's inbox, and every cross-shard reduction
  /// folds per-vertex records in vertex order, so results are
  /// bit-identical at every thread count and every shard count.
  /// 0 = auto (16).
  uint32_t compute_shards_per_machine = 0;
  /// Let threads that drained their own shards claim leftovers from
  /// statically-chosen victims (ThreadPool::ParallelForStealable). Steal
  /// order derives from shard indices, never timing; turning this off
  /// pins every shard to its round-robin owner. Outputs are identical
  /// either way.
  bool enable_work_stealing = true;
  /// Collect wall/busy time per engine phase into EngineResult::phase
  /// (perf-trajectory benches). Off by default: the hot paths then pay
  /// only a predictable branch per round.
  bool collect_phase_times = false;
  /// Exploit the program's Combiner even when the simulated system's
  /// profile does not combine (Pregel-style sender-side combining,
  /// DESIGN.md section 16). Task results are bit-identical with this on
  /// or off — only wire-message counts, buffered bytes and the costs
  /// derived from them change. Ignored under mirroring profiles (mirror
  /// routing already dedupes the wire) and when the program has no
  /// combiner.
  bool sender_combining = false;
  /// When combining is active (profile-driven or sender_combining) and
  /// the combiner's fold is exact (Combiner::exact_fold), additionally
  /// pre-combine inside each compute shard through a per-(shard, dest)
  /// combine table, shrinking staging arenas before the merge. Outputs
  /// are bit-identical to merge-time-only combining at every shard and
  /// thread count; this switch exists as an escape hatch / A-B knob.
  bool shard_precombine = true;
  /// Group large inboxes with pool-wide lockstep passes (per-chunk
  /// histogram + prefix-sum scatter, fixed chunk count) instead of one
  /// serial sort per machine, making grouping parallelism
  /// machines x threads. Grouped output is bit-identical to the serial
  /// strategies at every thread count (DESIGN.md section 16).
  bool parallel_grouping = true;

  /// --- Observability (src/obs) ---
  /// When set, the engine emits one nested span group per round on
  /// `trace_track` — round > {compute, barrier, checkpoint, recovery} —
  /// timestamped from the SIMULATED clock (offset by
  /// trace_time_offset_seconds so batches line up on the caller's
  /// timeline), plus per-round memory/residual gauges and batch-level
  /// flat counters that reconcile exactly with the RunReport. Null means
  /// tracing is off and costs one predictable branch per round.
  Tracer* tracer = nullptr;
  /// Track to emit on; kAutoTrack registers a fresh "engine/rounds"
  /// track at Run() (standalone engine users; the runner passes its own).
  uint32_t trace_track = kAutoTrack;
  double trace_time_offset_seconds = 0.0;
  /// Additionally emit one child span per (machine, shard) under each
  /// round's compute span, sized proportionally to the shard's staged
  /// message count (simulated timestamps; bit-identical across thread
  /// counts like everything else in the trace). Off by default: a round
  /// then costs machines × shards extra spans.
  bool trace_shard_spans = false;
  static constexpr uint32_t kAutoTrack = ~0u;

  /// --- Real out-of-core execution (src/ooc, DESIGN.md section 13) ---
  /// When ooc.enabled, the engine runs under the hard per-machine memory
  /// budget for real: inter-round message overflow pages to checksummed
  /// spill files, vertex state sits behind a sectioned LRU cache, and
  /// RoundStats carries the *measured* spilled bytes instead of the
  /// modeled estimate. Requires an out-of-core profile (GraphD). Results
  /// are bit-identical to the uncapped run at every thread count.
  OocOptions ooc;

  /// --- Pregel fault tolerance (checkpointing) ---
  /// Checkpoint every N rounds (0 = off): each machine flushes its vertex
  /// state, residual results and in-flight messages to disk, adding the
  /// write time to the round.
  uint64_t checkpoint_interval_rounds = 0;
  /// Inject a machine failure at the start of this round (kNoFailure =
  /// none): recovery reloads the last checkpoint and replays the rounds
  /// since (from round 0 when checkpointing is off).
  uint64_t inject_failure_at_round = kNoFailure;

  static constexpr uint64_t kNoFailure = ~0ULL;
};

/// Measured (real, not simulated) time the engine spent per phase of the
/// superstep loop; filled only when EngineOptions::collect_phase_times is
/// set. compute/deliver are wall seconds of the (possibly parallel)
/// sections; group/stage are per-worker busy seconds summed over machines,
/// so they can exceed the compute wall time under multithreading.
struct EnginePhaseTimes {
  double compute_seconds = 0.0;  // Superstep compute (includes group/stage).
  double group_seconds = 0.0;    // Worker::GroupInbox busy time.
  double stage_seconds = 0.0;    // Arena-merge (staging) busy time.
  double deliver_seconds = 0.0;  // Outbox -> inbox delivery.
};

/// Outcome of one engine execution (one batch).
struct EngineResult {
  std::vector<RoundStats> rounds;
  /// Simulated wall-clock, capped at the overload cut-off when overloaded.
  double seconds = 0.0;
  bool overloaded = false;
  uint64_t num_rounds = 0;
  double total_messages = 0.0;       // Logical, paper scale.
  /// Physical messages that crossed the wire (paper scale) and the
  /// logical units they stand for. Equal unless a combiner (or mirror
  /// routing) merged messages; their ratio is the run's combine ratio.
  double total_wire_messages = 0.0;
  double total_logical_sent = 0.0;
  /// Logical sent units per wire message (>= 1 under combining; exactly
  /// 1.0 when nothing merged).
  double CombinedRatio() const {
    return total_wire_messages > 0.0
               ? total_logical_sent / total_wire_messages
               : 1.0;
  }
  double peak_memory_bytes = 0.0;    // Max machine demand over rounds.
  double peak_residual_bytes = 0.0;  // Max machine residual over rounds.
  /// Peak per-round in-memory message-buffer demand before any
  /// out-of-core cap (drives the disk-bound tuner).
  double peak_buffered_bytes = 0.0;
  /// Fault-tolerance accounting (0 unless enabled in EngineOptions).
  double checkpoint_seconds = 0.0;
  double recovery_seconds = 0.0;
  uint64_t checkpoints_taken = 0;
  bool failure_recovered = false;

  double network_overuse_seconds = 0.0;
  double disk_overuse_seconds = 0.0;
  /// Time-weighted disk utilisation over the run (the paper's metric:
  /// the fraction of wall-clock the disk spends performing operations).
  double disk_utilization = 0.0;
  /// True when any round formed a disk write queue (Table 3's ">100%").
  bool disk_saturated = false;
  double max_io_queue_length = 0.0;

  /// Residual bytes the program recorded via MessageSink::AddResidualBytes
  /// over the whole run, per machine, at generated-graph scale. The
  /// runner adds these to its carryover for the next batch; programs no
  /// longer need shared per-machine accumulators of their own (which
  /// would race once one machine's vertices execute on several shards).
  std::vector<double> residual_bytes_per_machine;

  /// Bytes spilled to disk over the run, summed over rounds and machines
  /// (paper scale). Modeled overflow for plain out-of-core profiles;
  /// measured spill-file traffic when the real src/ooc path ran.
  double spilled_bytes = 0.0;
  /// Measured I/O of the real out-of-core path; zeros unless ooc_active.
  OocRunStats ooc;
  bool ooc_active = false;

  /// Real per-phase engine time (zeros unless collect_phase_times).
  EnginePhaseTimes phase;

  double MessagesPerRound() const {
    return num_rounds == 0 ? 0.0 : total_messages / num_rounds;
  }
};

/// The synchronous superstep engine.
///
/// Executes a VertexProgram over a partitioned graph with real message
/// routing between per-machine workers, and prices each round through the
/// cost model. One class serves Pregel+, Giraph (profile multipliers),
/// GraphD (out-of-core costing) and Pregel+(mirror) (broadcast routing via
/// a MirrorPlan).
///
/// The engine is immutable after construction and Run is const: every
/// mutable run artifact (message buffers, staging arenas, the out-of-core
/// runtime) lives in the caller's QueryContext, so several queries can
/// Run against ONE engine concurrently — each with its own context — over
/// shared graph/partition/mirror state (DESIGN.md section 14).
class SyncEngine {
 public:
  /// `graph` and `partition` must outlive the engine.
  SyncEngine(const Graph& graph, const Partitioning& partition,
             EngineOptions options);
  ~SyncEngine();

  SyncEngine(const SyncEngine&) = delete;
  SyncEngine& operator=(const SyncEngine&) = delete;

  /// Runs `program` to quiescence as query_id 0 on a private per-run
  /// pool (the historical single-query behavior, bit for bit).
  Result<EngineResult> Run(VertexProgram& program) const;

  /// Re-entrant form: runs `program` with the context's query_id, pool
  /// and reusable buffers. One context per in-flight query; the same
  /// context may be reused across a query's batches. Returns
  /// InvalidArgument when the partition does not match the cluster in
  /// `options`.
  Result<EngineResult> Run(VertexProgram& program, QueryContext& ctx) const;

  const EngineOptions& options() const { return options_; }
  const MirrorPlan* mirror_plan() const { return mirror_plan_.get(); }

 private:
  class ShardSink;
  struct ShardPlan;
  struct MergeSlot;
  struct DenseCombineTable;
  struct UnifiedCombineTable;
  struct RunScratch;

  /// Per-machine share of CSR storage, generated scale.
  void ComputeGraphShares();

  /// Aligns the cost model's ooc budget with the real runtime's message
  /// share when real out-of-core execution is requested, so modeled and
  /// measured spilling answer against the same resident allowance.
  static EngineOptions NormalizeOptions(EngineOptions options);

  /// Everything below is written during construction only; Run never
  /// mutates the engine (per-run state lives in the QueryContext).
  const Graph& graph_;
  const Partitioning& partition_;
  EngineOptions options_;
  CostModel cost_model_;
  std::unique_ptr<MirrorPlan> mirror_plan_;  // Mirror profiles only.
  std::vector<double> graph_share_bytes_;    // Per machine.
  std::vector<double> edge_stream_bytes_;    // Per machine (OOC).
  std::vector<std::vector<VertexId>> vertices_by_machine_;
  /// local_index_[v] = position of v within vertices_by_machine_[its
  /// machine] — the dense per-machine vertex numbering the direct-indexed
  /// combine tables key on. Ascending in v within each machine.
  std::vector<uint32_t> local_index_;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_SYNC_ENGINE_H_
