#include "engine/mirror_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace vcmp {

MirrorPlan::MirrorPlan(const Graph& graph, const Partitioning& partition,
                       uint64_t degree_threshold)
    : degree_threshold_(degree_threshold),
      mirrored_(graph.NumVertices(), false),
      remote_machines_(graph.NumVertices(), 0) {
  VCMP_CHECK(partition.assignment.size() == graph.NumVertices());
  std::vector<uint8_t> seen(partition.num_machines, 0);
  uint64_t mirror_adjacency_entries = 0;

  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (graph.OutDegree(v) <= degree_threshold) continue;
    mirrored_[v] = true;
    std::fill(seen.begin(), seen.end(), 0);
    uint32_t home = partition.MachineOf(v);
    uint32_t remote = 0;
    for (VertexId u : graph.Neighbors(v)) {
      uint32_t machine = partition.MachineOf(u);
      if (machine != home && !seen[machine]) {
        seen[machine] = 1;
        ++remote;
      }
    }
    remote_machines_[v] = remote;
    total_mirrors_ += remote;
    // Each neighbour entry of a mirrored vertex is duplicated once into
    // the owning mirror's sublist.
    mirror_adjacency_entries += graph.OutDegree(v);
  }
  if (partition.num_machines > 0) {
    mirror_state_bytes_per_machine_ =
        static_cast<double>(mirror_adjacency_entries) * sizeof(VertexId) /
        partition.num_machines;
  }
}

}  // namespace vcmp
