#ifndef VCMP_ENGINE_WORKER_H_
#define VCMP_ENGINE_WORKER_H_

#include <unordered_map>
#include <vector>

#include "engine/message.h"
#include "graph/partition.h"

namespace vcmp {

/// Send-side statistics a worker accumulates during one round, at
/// generated-graph scale.
struct WorkerSendStats {
  /// Logical messages sent (sum of multiplicities).
  double logical_sent = 0.0;
  /// Wire messages sent (post-combining physical count; equals
  /// logical_sent for non-combining systems).
  double wire_sent = 0.0;
  /// Wire messages destined to other machines.
  double wire_cross = 0.0;
  /// Logical messages destined to other machines.
  double logical_cross = 0.0;

  void Clear() { *this = WorkerSendStats{}; }
};

/// Per-machine message buffers of a simulated worker.
///
/// A Worker owns the machine's inbox for the current round and the staging
/// outboxes of the round in progress. Combining systems merge same-
/// (target, tag) messages in the outbox before "transmission".
class Worker {
 public:
  Worker() = default;

  /// Prepares outboxes for `num_machines` destinations.
  void Reset(uint32_t num_machines);

  /// Buffers a message for the worker of `target_machine`, merging it into
  /// an existing outbox entry when `combiner` is non-null. Returns true if
  /// a new wire message was created (false = merged into an existing one).
  bool Stage(uint32_t target_machine, const Message& message,
             const Combiner* combiner);

  /// Moves this worker's outbox for `machine` into `dest`, clearing it.
  void Drain(uint32_t machine, std::vector<Message>* dest);

  std::vector<Message>& inbox() { return inbox_; }
  const std::vector<Message>& inbox() const { return inbox_; }
  WorkerSendStats& send_stats() { return send_stats_; }

  /// Sorts the inbox by (target, tag) so Compute receives contiguous
  /// per-vertex groups.
  void GroupInbox();

 private:
  std::vector<Message> inbox_;
  std::vector<std::vector<Message>> outboxes_;  // One per target machine.
  /// Per-destination index of (target, tag) -> outbox position, used only
  /// when combining.
  std::vector<std::unordered_map<uint64_t, size_t>> combine_index_;
  WorkerSendStats send_stats_;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_WORKER_H_
