#ifndef VCMP_ENGINE_WORKER_H_
#define VCMP_ENGINE_WORKER_H_

#include <cstdint>
#include <vector>

#include "engine/message.h"
#include "graph/partition.h"

namespace vcmp {

/// Send-side statistics a worker accumulates during one round, at
/// generated-graph scale.
struct WorkerSendStats {
  /// Logical messages sent (sum of multiplicities).
  double logical_sent = 0.0;
  /// Wire messages sent (post-combining physical count; equals
  /// logical_sent for non-combining systems).
  double wire_sent = 0.0;
  /// Wire messages destined to other machines.
  double wire_cross = 0.0;
  /// Logical messages destined to other machines.
  double logical_cross = 0.0;

  void Clear() { *this = WorkerSendStats{}; }
};

/// Open-addressing (target, tag) -> outbox-position index used for
/// sender-side combining.
///
/// Power-of-two capacity with linear probing; a per-slot epoch stamp makes
/// Clear() O(1) (bump the epoch) instead of rehashing or deallocating, so
/// the table's memory survives rounds and its hot slots stay cached. This
/// replaces the std::unordered_map per destination, whose node allocations
/// and pointer chasing dominated the staging path.
class CombineIndex {
 public:
  /// Looks up `key`; inserts it mapping to `fresh_value` when absent.
  /// Returns the stored value and sets *inserted accordingly.
  size_t FindOrInsert(uint64_t key, size_t fresh_value, bool* inserted);

  /// Logically empties the index, keeping capacity (epoch bump).
  void Clear() {
    ++epoch_;
    size_ = 0;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t epoch = 0;  // Slot is live iff epoch == CombineIndex::epoch_.
    size_t value = 0;
  };

  void Grow();

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  uint64_t epoch_ = 1;  // Starts above the default slot epoch (0).
};

/// Per-machine message buffers of a simulated worker.
///
/// A Worker owns the machine's inbox for the current round and the staging
/// outboxes of the round in progress. Combining systems merge same-
/// (target, tag) messages in the outbox before "transmission". All buffers
/// retain their capacity across rounds and Reset calls: the steady state
/// of a multi-round run performs no per-round allocations.
class Worker {
 public:
  Worker() = default;

  /// Prepares outboxes for `num_machines` destinations. Buffer capacity
  /// from earlier rounds/runs is retained.
  void Reset(uint32_t num_machines);

  /// Buffers a message for the worker of `target_machine`, merging it into
  /// an existing outbox entry when `combiner` is non-null. Returns true if
  /// a new wire message was created (false = merged into an existing one).
  bool Stage(uint32_t target_machine, const Message& message,
             const Combiner* combiner);

  /// Appends this worker's outbox for `machine` to `dest`, then clears the
  /// outbox (capacity retained).
  void Drain(uint32_t machine, std::vector<Message>* dest);

  std::vector<Message>& inbox() { return inbox_; }
  const std::vector<Message>& inbox() const { return inbox_; }
  WorkerSendStats& send_stats() { return send_stats_; }

  /// Sorts the inbox by (target, tag) so Compute receives contiguous
  /// per-vertex groups. Large inboxes use a stable LSD radix sort over the
  /// packed (target, tag) key with a reusable scratch buffer; tiny ones
  /// fall back to std::stable_sort. Either way messages with equal
  /// (target, tag) keep their arrival order (stable), which fixes the
  /// grouping order independently of inbox size.
  void GroupInbox();

  /// Enables phase-time collection (see group_ns/stage_ns). Off by
  /// default; the hot paths then pay a single predictable branch.
  void set_collect_timing(bool on) { collect_timing_ = on; }
  /// Nanoseconds spent in GroupInbox / Stage since the last Reset, when
  /// timing collection is enabled.
  uint64_t group_ns() const { return group_ns_; }
  uint64_t stage_ns() const { return stage_ns_; }

 private:
  void RadixSortInbox();

  std::vector<Message> inbox_;
  std::vector<Message> scratch_;                // Radix sort double-buffer.
  std::vector<std::vector<Message>> outboxes_;  // One per target machine.
  /// Per-destination combining index, used only when combining.
  std::vector<CombineIndex> combine_index_;
  WorkerSendStats send_stats_;
  bool collect_timing_ = false;
  uint64_t group_ns_ = 0;
  uint64_t stage_ns_ = 0;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_WORKER_H_
