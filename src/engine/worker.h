#ifndef VCMP_ENGINE_WORKER_H_
#define VCMP_ENGINE_WORKER_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/wall_clock.h"
#include "engine/message.h"
#include "engine/message_block.h"
#include "graph/partition.h"

namespace vcmp {

class ThreadPool;

/// Send-side statistics a worker accumulates during one round, at
/// generated-graph scale.
struct WorkerSendStats {
  /// Logical messages sent (sum of multiplicities).
  double logical_sent = 0.0;
  /// Wire messages sent (post-combining physical count; equals
  /// logical_sent for non-combining systems).
  double wire_sent = 0.0;
  /// Wire messages destined to other machines.
  double wire_cross = 0.0;
  /// Logical messages destined to other machines.
  double logical_cross = 0.0;

  void Clear() { *this = WorkerSendStats{}; }
};

/// Open-addressing (target, tag) -> outbox-position index used for
/// sender-side combining.
///
/// Power-of-two capacity with linear probing; a per-slot epoch stamp makes
/// Clear() O(1) (bump the epoch) instead of rehashing or deallocating, so
/// the table's memory survives rounds and its hot slots stay cached. This
/// replaces the std::unordered_map per destination, whose node allocations
/// and pointer chasing dominated the staging path. FindOrInsert is inline:
/// it sits inside the devirtualized staging loop, one call per staged
/// message.
class CombineIndex {
 public:
  /// Looks up `key`; inserts it mapping to `fresh_value` when absent.
  /// Returns the stored value and sets *inserted accordingly.
  size_t FindOrInsert(uint64_t key, size_t fresh_value, bool* inserted) {
    if (size_ * 4 >= slots_.size() * 3) Grow();  // Load factor cap: 3/4.
    uint64_t hash = key * 0x9e3779b97f4a7c15ULL;
    size_t index = (hash ^ (hash >> 29)) & mask_;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.epoch != epoch_) {  // Empty or stale from a cleared round.
        slot.key = key;
        slot.value = fresh_value;
        slot.epoch = epoch_;
        ++size_;
        *inserted = true;
        return fresh_value;
      }
      if (slot.key == key) {
        *inserted = false;
        return slot.value;
      }
      index = (index + 1) & mask_;
    }
  }

  /// Logically empties the index, keeping capacity (epoch bump).
  void Clear() {
    ++epoch_;
    size_ = 0;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t epoch = 0;  // Slot is live iff epoch == CombineIndex::epoch_.
    size_t value = 0;
  };

  void Grow();

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  uint64_t epoch_ = 1;  // Starts above the default slot epoch (0).
};

/// Per-machine message buffers of a simulated worker.
///
/// A Worker owns the machine's inbox for the current round and the staging
/// outboxes of the round in progress, all in SoA MessageBlock layout.
/// Combining systems merge same-(target, tag) messages in the outbox
/// before "transmission". All buffers retain their capacity across rounds
/// and Reset calls: the steady state of a multi-round run performs no
/// per-round allocations.
///
/// GroupInbox() no longer permutes whole messages. It sorts packed
/// (target, tag) keys carrying 4-byte indices, gathers only the payload
/// columns, and publishes the result as `runs()` (one MessageRun per
/// (target, tag) group, ascending) over `grouped_values()` /
/// `grouped_multiplicities()`. The inbox's own target/tag columns are
/// left in arrival order — consumers must read groups via runs().
class Worker {
 public:
  Worker() = default;

  /// Prepares outboxes for `num_machines` destinations. Buffer capacity
  /// from earlier rounds/runs is retained.
  void Reset(uint32_t num_machines);

  /// Caches the combiner (may be null = no combining) and its kind so
  /// Stage() can inline the sum/min folds without a virtual call.
  void SetCombiner(const Combiner* combiner) {
    combiner_ = combiner;
    combiner_kind_ = combiner ? combiner->kind() : CombinerKind::kCustom;
  }

  /// Declares the vertex-id universe [0, universe). Lets GroupInbox pick
  /// a dense counting pass when the inbox occupancy is high enough.
  void set_vertex_space(VertexId universe) { vertex_space_ = universe; }

  /// Buffers (target, tag, value, multiplicity) for the worker of
  /// `target_machine`, merging it into an existing outbox entry when a
  /// combiner is set. Returns true if a new wire message was created
  /// (false = merged into an existing one).
  bool Stage(uint32_t target_machine, VertexId target, uint32_t tag,
             double value, double multiplicity) {
    const uint64_t t0 = collect_timing_ ? wallclock::NowNs() : 0;
    MessageBlock& outbox = outboxes_[target_machine];
    bool new_wire = true;
    if (combiner_ != nullptr) {
      bool inserted = false;
      const uint64_t key = (static_cast<uint64_t>(target) << 32) | tag;
      const size_t position = combine_index_[target_machine].FindOrInsert(
          key, outbox.size(), &inserted);
      if (!inserted) {
        switch (combiner_kind_) {
          case CombinerKind::kSum:
            outbox.values()[position] += value;
            outbox.multiplicities()[position] += multiplicity;
            break;
          case CombinerKind::kMin:
            if (value < outbox.values()[position]) {
              outbox.values()[position] = value;
            }
            outbox.multiplicities()[position] += multiplicity;
            break;
          case CombinerKind::kCustom: {
            Message into = outbox.At(position);
            combiner_->Merge(into, Message{target, tag, value, multiplicity});
            outbox.Set(position, into);
            break;
          }
        }
        new_wire = false;  // Merged: no new wire message.
      }
    }
    if (new_wire) outbox.PushBack(target, tag, value, multiplicity);
    if (collect_timing_) stage_ns_ += wallclock::NowNs() - t0;
    return new_wire;
  }

  /// Appends this worker's outbox for `machine` to `dest`, then clears the
  /// outbox (capacity retained).
  void Drain(uint32_t machine, MessageBlock* dest);

  /// Number of messages currently staged for `machine`.
  size_t OutboxSize(uint32_t machine) const {
    return outboxes_[machine].size();
  }

  /// O(1) delivery for the single-sender case: swaps the outbox for
  /// `machine` with `*dest` (which must be empty), so both buffers'
  /// capacities keep recycling with zero copies.
  void SwapOutbox(uint32_t machine, MessageBlock* dest);

  MessageBlock& inbox() { return inbox_; }
  const MessageBlock& inbox() const { return inbox_; }
  WorkerSendStats& send_stats() { return send_stats_; }
  const WorkerSendStats& send_stats() const { return send_stats_; }

  /// Direct access to the staging outbox / combining index for one
  /// destination. The sharded engine merges per-shard arenas into these
  /// itself (one merge task owns exactly one (sender, destination) pair,
  /// so no two tasks touch the same buffer) instead of going through
  /// Stage, whose timing accumulator would race across merge tasks.
  MessageBlock& outbox(uint32_t machine) { return outboxes_[machine]; }
  CombineIndex& combine_index(uint32_t machine) {
    return combine_index_[machine];
  }
  const Combiner* combiner() const { return combiner_; }
  CombinerKind combiner_kind() const { return combiner_kind_; }

  /// Groups the inbox by (target, tag) and publishes runs() +
  /// grouped_values()/grouped_multiplicities(). Messages with equal
  /// (target, tag) keep their arrival order within the run's payload
  /// (stable), which fixes the grouping order independently of inbox
  /// size and sort strategy. Strategy per round: already-sorted inboxes
  /// are detected and skipped; tiny inboxes comparison-sort; high-
  /// occupancy single-tag inboxes use a dense per-vertex counting pass;
  /// everything else runs a byte-skipping LSD radix over (key, index)
  /// pairs. Only the two 8-byte payload columns are gathered.
  void GroupInbox();

  /// Engine fast path for the unified combine fold (DESIGN.md §16): the
  /// fold emits this worker's inbox already grouped — ascending distinct
  /// (target, tag) keys, one element each — and writes the matching
  /// singleton runs into pregrouped_runs() in the same pass, so neither
  /// a sortedness scan nor a run-building pass is needed.
  /// PublishPregroupedRuns() then replaces GroupInbox() for the round;
  /// the published state is bit-identical to what grouping the same
  /// inbox would produce (the sorted fast path would rebuild exactly
  /// these runs over the same in-place payload columns). Only the
  /// inbox's payload columns are written on this path — the runs are
  /// the round's sole key source, so the target/tag columns hold
  /// unspecified bytes (the GroupInbox contract already routes every
  /// consumer through runs()).
  std::vector<MessageRun>& pregrouped_runs() { return runs_; }
  void PublishPregroupedRuns();

  /// --- Parallel grouping pass API ---
  /// Thread-parallel variant of GroupInbox, driven by the free function
  /// ParallelGroupInboxes below in pool-wide lockstep passes. Each call
  /// touches only this worker's state; concurrent calls for one worker
  /// are distinct chunks writing disjoint index slices, so the passes
  /// are race-free without any synchronization. The grouped output —
  /// runs(), grouped columns, key order — is bit-identical to
  /// GroupInbox(): the chunked LSD radix reserves, for every digit, the
  /// chunk-major slots of a chunk's elements, which reproduces the
  /// serial stable scatter's permutation exactly (DESIGN.md section 16).
  ///
  /// Fixed chunk count — NEVER derived from the thread count — so the
  /// pass structure is a pure function of the inbox.
  static constexpr uint32_t kGroupChunks = 16;
  /// Below this size one serial sort beats the pass barriers; the begin
  /// call then completes grouping immediately.
  static constexpr size_t kParallelGroupingThreshold = 8192;
  /// Dense counting keeps per-chunk vertex histograms; above this vertex
  /// universe the memory no longer pays and the radix path runs instead
  /// (same stable output either way).
  static constexpr VertexId kDenseParallelMaxVertexSpace = 1u << 18;

  /// Per machine: resets grouping state; small inboxes complete serially
  /// here (GroupScanChunk and later passes then no-op).
  void GroupScanBegin();
  /// Per (machine, chunk): packs this chunk's keys and summarizes them
  /// (varying bits, sortedness, boundary keys).
  void GroupScanChunk(uint32_t chunk);
  /// Per machine: folds the chunk summaries, finishes already-sorted
  /// inboxes, and picks dense-counting vs LSD-radix for the rest.
  void GroupPlan();
  /// Histogram/prefix/scatter passes the driver repeats
  /// group_digit_passes() times (radix: one per varying key byte; dense:
  /// one). Calls with `pass >= group_digit_passes()` no-op, which is how
  /// machines with fewer digits ride the fleet-wide lockstep.
  uint32_t group_digit_passes() const { return group_digit_passes_; }
  void GroupHistChunk(uint32_t pass, uint32_t chunk);
  void GroupPrefix(uint32_t pass);
  void GroupScatterChunk(uint32_t pass, uint32_t chunk);
  /// Per (machine, chunk): gathers payload columns through the sorted
  /// permutation (radix mode; dense scattered payload directly).
  void GroupGatherChunk(uint32_t chunk);
  /// Per machine: builds the runs and publishes the grouped columns.
  void GroupFinish();

  /// The (target, tag) runs of the grouped inbox, ascending; valid after
  /// GroupInbox() until the inbox is next modified. Runs with equal
  /// target are adjacent — this doubles as the round's sparse
  /// active-vertex frontier (one or more runs per active vertex).
  std::span<const MessageRun> runs() const { return runs_; }

  /// Payload columns aligned with runs(): element i of the grouped inbox
  /// is (values[i], multiplicities[i]).
  const double* grouped_values() const { return grouped_values_ptr_; }
  const double* grouped_multiplicities() const { return grouped_mults_ptr_; }

  /// AoS view of the grouped inbox for programs without a ComputeRun
  /// implementation (built lazily, reused within the round). Valid until
  /// the inbox is next modified.
  std::span<const Message> MaterializedInbox();

  /// Enables phase-time collection (see group_ns/stage_ns). Off by
  /// default; the hot paths then pay a single predictable branch.
  void set_collect_timing(bool on) { collect_timing_ = on; }
  /// Nanoseconds spent in GroupInbox / Stage since the last Reset, when
  /// timing collection is enabled.
  uint64_t group_ns() const { return group_ns_; }
  uint64_t stage_ns() const { return stage_ns_; }

 private:
  /// Sort key (key, original index) pair; 4-byte index keeps the radix
  /// element at 16 bytes vs the 24-byte Message it replaces.
  struct KeyIdx {
    uint64_t key = 0;
    uint32_t idx = 0;
  };

  void GroupInboxSerial();
  void SortPairsAndGather(uint64_t varying, size_t n);
  void GroupDense(size_t n);
  void BuildRunsFromKeys(size_t n);

  /// [begin, end) of `chunk` when n elements split over kGroupChunks.
  static std::pair<size_t, size_t> ChunkRange(size_t n, uint32_t chunk) {
    return {n * chunk / kGroupChunks, n * (chunk + 1) / kGroupChunks};
  }

  /// Which grouping strategy the parallel pass driver is executing for
  /// this worker's current inbox (decided by GroupPlan).
  enum class GroupMode : uint8_t {
    kIdle,        // Not inside a parallel grouping episode.
    kScan,        // Begin ran; chunk scan + plan still pending.
    kSerialDone,  // Completed serially (small / already sorted).
    kRadix,       // Chunked byte-skipping LSD radix over (key, idx).
    kDense,       // Chunked per-vertex counting scatter (single tag).
  };

  MessageBlock inbox_;
  std::vector<MessageBlock> outboxes_;  // One per target machine.
  /// Per-destination combining index, used only when combining.
  std::vector<CombineIndex> combine_index_;
  const Combiner* combiner_ = nullptr;
  CombinerKind combiner_kind_ = CombinerKind::kCustom;
  VertexId vertex_space_ = 0;

  // Grouping state, rebuilt by GroupInbox() each round (capacity kept).
  std::vector<uint64_t> keys_;
  std::vector<KeyIdx> pairs_;
  std::vector<KeyIdx> pair_scratch_;
  std::vector<uint32_t> counts_;  // Dense counting-sort histogram.
  std::vector<MessageRun> runs_;
  std::vector<double> grouped_values_;
  std::vector<double> grouped_mults_;
  const double* grouped_values_ptr_ = nullptr;
  const double* grouped_mults_ptr_ = nullptr;
  // vcmp:lint-allow(P1, sanctioned AoS fallback view for programs without ComputeRun)
  std::vector<Message> aos_scratch_;
  bool aos_valid_ = false;

  WorkerSendStats send_stats_;
  bool collect_timing_ = false;
  uint64_t group_ns_ = 0;
  uint64_t stage_ns_ = 0;

  // Parallel-grouping episode state (valid GroupScanBegin..GroupFinish).
  GroupMode group_mode_ = GroupMode::kIdle;
  uint32_t group_digit_passes_ = 0;
  std::vector<int> digit_shifts_;       // Radix: LSD shifts, varying only.
  std::vector<uint64_t> chunk_or_;      // Per-chunk key summaries.
  std::vector<uint64_t> chunk_and_;
  std::vector<uint64_t> chunk_first_;
  std::vector<uint64_t> chunk_last_;
  std::vector<uint8_t> chunk_sorted_;
  std::vector<uint8_t> chunk_empty_;
  /// Radix: kGroupChunks x 256 digit counts, overwritten with scatter
  /// starts by GroupPrefix. Dense: kGroupChunks x vertex_space counts.
  std::vector<uint32_t> chunk_hist_;
};

/// Groups every worker's inbox using pool-wide flat lockstep passes, so
/// grouping parallelism is machines x threads instead of machines. The
/// sequence per round: a per-machine begin (small inboxes finish
/// serially right there), a chunked key scan, a per-machine plan, then
/// for each digit pass histogram -> prefix -> scatter chunk tasks, a
/// chunked payload gather, and a per-machine finish. Grouped output is
/// bit-identical to calling w.GroupInbox() on every worker, at every
/// thread count. Chunk tasks are launched stealable when `steal` (the
/// engine's work-stealing switch; outputs identical either way).
/// Returns wall nanoseconds spent (0 unless `collect_timing`).
uint64_t ParallelGroupInboxes(ThreadPool& pool, std::span<Worker> workers,
                              bool steal, bool collect_timing);

}  // namespace vcmp

#endif  // VCMP_ENGINE_WORKER_H_
