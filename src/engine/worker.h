#ifndef VCMP_ENGINE_WORKER_H_
#define VCMP_ENGINE_WORKER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/wall_clock.h"
#include "engine/message.h"
#include "engine/message_block.h"
#include "graph/partition.h"

namespace vcmp {

/// Send-side statistics a worker accumulates during one round, at
/// generated-graph scale.
struct WorkerSendStats {
  /// Logical messages sent (sum of multiplicities).
  double logical_sent = 0.0;
  /// Wire messages sent (post-combining physical count; equals
  /// logical_sent for non-combining systems).
  double wire_sent = 0.0;
  /// Wire messages destined to other machines.
  double wire_cross = 0.0;
  /// Logical messages destined to other machines.
  double logical_cross = 0.0;

  void Clear() { *this = WorkerSendStats{}; }
};

/// Open-addressing (target, tag) -> outbox-position index used for
/// sender-side combining.
///
/// Power-of-two capacity with linear probing; a per-slot epoch stamp makes
/// Clear() O(1) (bump the epoch) instead of rehashing or deallocating, so
/// the table's memory survives rounds and its hot slots stay cached. This
/// replaces the std::unordered_map per destination, whose node allocations
/// and pointer chasing dominated the staging path. FindOrInsert is inline:
/// it sits inside the devirtualized staging loop, one call per staged
/// message.
class CombineIndex {
 public:
  /// Looks up `key`; inserts it mapping to `fresh_value` when absent.
  /// Returns the stored value and sets *inserted accordingly.
  size_t FindOrInsert(uint64_t key, size_t fresh_value, bool* inserted) {
    if (size_ * 4 >= slots_.size() * 3) Grow();  // Load factor cap: 3/4.
    uint64_t hash = key * 0x9e3779b97f4a7c15ULL;
    size_t index = (hash ^ (hash >> 29)) & mask_;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.epoch != epoch_) {  // Empty or stale from a cleared round.
        slot.key = key;
        slot.value = fresh_value;
        slot.epoch = epoch_;
        ++size_;
        *inserted = true;
        return fresh_value;
      }
      if (slot.key == key) {
        *inserted = false;
        return slot.value;
      }
      index = (index + 1) & mask_;
    }
  }

  /// Logically empties the index, keeping capacity (epoch bump).
  void Clear() {
    ++epoch_;
    size_ = 0;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t epoch = 0;  // Slot is live iff epoch == CombineIndex::epoch_.
    size_t value = 0;
  };

  void Grow();

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  uint64_t epoch_ = 1;  // Starts above the default slot epoch (0).
};

/// Per-machine message buffers of a simulated worker.
///
/// A Worker owns the machine's inbox for the current round and the staging
/// outboxes of the round in progress, all in SoA MessageBlock layout.
/// Combining systems merge same-(target, tag) messages in the outbox
/// before "transmission". All buffers retain their capacity across rounds
/// and Reset calls: the steady state of a multi-round run performs no
/// per-round allocations.
///
/// GroupInbox() no longer permutes whole messages. It sorts packed
/// (target, tag) keys carrying 4-byte indices, gathers only the payload
/// columns, and publishes the result as `runs()` (one MessageRun per
/// (target, tag) group, ascending) over `grouped_values()` /
/// `grouped_multiplicities()`. The inbox's own target/tag columns are
/// left in arrival order — consumers must read groups via runs().
class Worker {
 public:
  Worker() = default;

  /// Prepares outboxes for `num_machines` destinations. Buffer capacity
  /// from earlier rounds/runs is retained.
  void Reset(uint32_t num_machines);

  /// Caches the combiner (may be null = no combining) and its kind so
  /// Stage() can inline the sum/min folds without a virtual call.
  void SetCombiner(const Combiner* combiner) {
    combiner_ = combiner;
    combiner_kind_ = combiner ? combiner->kind() : CombinerKind::kCustom;
  }

  /// Declares the vertex-id universe [0, universe). Lets GroupInbox pick
  /// a dense counting pass when the inbox occupancy is high enough.
  void set_vertex_space(VertexId universe) { vertex_space_ = universe; }

  /// Buffers (target, tag, value, multiplicity) for the worker of
  /// `target_machine`, merging it into an existing outbox entry when a
  /// combiner is set. Returns true if a new wire message was created
  /// (false = merged into an existing one).
  bool Stage(uint32_t target_machine, VertexId target, uint32_t tag,
             double value, double multiplicity) {
    const uint64_t t0 = collect_timing_ ? wallclock::NowNs() : 0;
    MessageBlock& outbox = outboxes_[target_machine];
    bool new_wire = true;
    if (combiner_ != nullptr) {
      bool inserted = false;
      const uint64_t key = (static_cast<uint64_t>(target) << 32) | tag;
      const size_t position = combine_index_[target_machine].FindOrInsert(
          key, outbox.size(), &inserted);
      if (!inserted) {
        switch (combiner_kind_) {
          case CombinerKind::kSum:
            outbox.values()[position] += value;
            outbox.multiplicities()[position] += multiplicity;
            break;
          case CombinerKind::kMin:
            if (value < outbox.values()[position]) {
              outbox.values()[position] = value;
            }
            outbox.multiplicities()[position] += multiplicity;
            break;
          case CombinerKind::kCustom: {
            Message into = outbox.At(position);
            combiner_->Merge(into, Message{target, tag, value, multiplicity});
            outbox.Set(position, into);
            break;
          }
        }
        new_wire = false;  // Merged: no new wire message.
      }
    }
    if (new_wire) outbox.PushBack(target, tag, value, multiplicity);
    if (collect_timing_) stage_ns_ += wallclock::NowNs() - t0;
    return new_wire;
  }

  /// Appends this worker's outbox for `machine` to `dest`, then clears the
  /// outbox (capacity retained).
  void Drain(uint32_t machine, MessageBlock* dest);

  /// Number of messages currently staged for `machine`.
  size_t OutboxSize(uint32_t machine) const {
    return outboxes_[machine].size();
  }

  /// O(1) delivery for the single-sender case: swaps the outbox for
  /// `machine` with `*dest` (which must be empty), so both buffers'
  /// capacities keep recycling with zero copies.
  void SwapOutbox(uint32_t machine, MessageBlock* dest);

  MessageBlock& inbox() { return inbox_; }
  const MessageBlock& inbox() const { return inbox_; }
  WorkerSendStats& send_stats() { return send_stats_; }

  /// Direct access to the staging outbox / combining index for one
  /// destination. The sharded engine merges per-shard arenas into these
  /// itself (one merge task owns exactly one (sender, destination) pair,
  /// so no two tasks touch the same buffer) instead of going through
  /// Stage, whose timing accumulator would race across merge tasks.
  MessageBlock& outbox(uint32_t machine) { return outboxes_[machine]; }
  CombineIndex& combine_index(uint32_t machine) {
    return combine_index_[machine];
  }
  const Combiner* combiner() const { return combiner_; }
  CombinerKind combiner_kind() const { return combiner_kind_; }

  /// Groups the inbox by (target, tag) and publishes runs() +
  /// grouped_values()/grouped_multiplicities(). Messages with equal
  /// (target, tag) keep their arrival order within the run's payload
  /// (stable), which fixes the grouping order independently of inbox
  /// size and sort strategy. Strategy per round: already-sorted inboxes
  /// are detected and skipped; tiny inboxes comparison-sort; high-
  /// occupancy single-tag inboxes use a dense per-vertex counting pass;
  /// everything else runs a byte-skipping LSD radix over (key, index)
  /// pairs. Only the two 8-byte payload columns are gathered.
  void GroupInbox();

  /// The (target, tag) runs of the grouped inbox, ascending; valid after
  /// GroupInbox() until the inbox is next modified. Runs with equal
  /// target are adjacent — this doubles as the round's sparse
  /// active-vertex frontier (one or more runs per active vertex).
  std::span<const MessageRun> runs() const { return runs_; }

  /// Payload columns aligned with runs(): element i of the grouped inbox
  /// is (values[i], multiplicities[i]).
  const double* grouped_values() const { return grouped_values_ptr_; }
  const double* grouped_multiplicities() const { return grouped_mults_ptr_; }

  /// AoS view of the grouped inbox for programs without a ComputeRun
  /// implementation (built lazily, reused within the round). Valid until
  /// the inbox is next modified.
  std::span<const Message> MaterializedInbox();

  /// Enables phase-time collection (see group_ns/stage_ns). Off by
  /// default; the hot paths then pay a single predictable branch.
  void set_collect_timing(bool on) { collect_timing_ = on; }
  /// Nanoseconds spent in GroupInbox / Stage since the last Reset, when
  /// timing collection is enabled.
  uint64_t group_ns() const { return group_ns_; }
  uint64_t stage_ns() const { return stage_ns_; }

 private:
  /// Sort key (key, original index) pair; 4-byte index keeps the radix
  /// element at 16 bytes vs the 24-byte Message it replaces.
  struct KeyIdx {
    uint64_t key = 0;
    uint32_t idx = 0;
  };

  void SortPairsAndGather(uint64_t varying, size_t n);
  void GroupDense(size_t n);
  void BuildRunsFromKeys(size_t n);

  MessageBlock inbox_;
  std::vector<MessageBlock> outboxes_;  // One per target machine.
  /// Per-destination combining index, used only when combining.
  std::vector<CombineIndex> combine_index_;
  const Combiner* combiner_ = nullptr;
  CombinerKind combiner_kind_ = CombinerKind::kCustom;
  VertexId vertex_space_ = 0;

  // Grouping state, rebuilt by GroupInbox() each round (capacity kept).
  std::vector<uint64_t> keys_;
  std::vector<KeyIdx> pairs_;
  std::vector<KeyIdx> pair_scratch_;
  std::vector<uint32_t> counts_;  // Dense counting-sort histogram.
  std::vector<MessageRun> runs_;
  std::vector<double> grouped_values_;
  std::vector<double> grouped_mults_;
  const double* grouped_values_ptr_ = nullptr;
  const double* grouped_mults_ptr_ = nullptr;
  // vcmp:lint-allow(P1, sanctioned AoS fallback view for programs without ComputeRun)
  std::vector<Message> aos_scratch_;
  bool aos_valid_ = false;

  WorkerSendStats send_stats_;
  bool collect_timing_ = false;
  uint64_t group_ns_ = 0;
  uint64_t stage_ns_ = 0;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_WORKER_H_
