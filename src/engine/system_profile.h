#ifndef VCMP_ENGINE_SYSTEM_PROFILE_H_
#define VCMP_ENGINE_SYSTEM_PROFILE_H_

#include <string>
#include <vector>

namespace vcmp {

/// The seven VC-system modes evaluated by the paper (Table 1, bottom).
enum class SystemKind {
  kGiraph = 0,
  kGiraphAsync,
  kPregelPlus,
  kPregelPlusMirror,
  kGraphD,
  kGraphLab,
  kGraphLabAsync,
};

/// Behavioural and cost parameters of one VC-system mode.
///
/// Each parameter models the mechanism the paper attributes to the real
/// system: Giraph pays JVM serialization/object overheads; Pregel+(mirror)
/// communicates through high-degree-vertex mirrors over a broadcast-only
/// interface; GraphD caps in-memory message buffers and spills to disk;
/// GraphLab(async) drops the barrier but pays distributed-lock overhead and
/// loses sender-side message combining.
struct SystemProfile {
  SystemKind kind = SystemKind::kPregelPlus;
  std::string name = "Pregel+";

  /// CPU multiplier relative to Pregel+ (C++/MPI = 1.0).
  double compute_factor = 1.0;
  /// Serialized bytes per logical message on the wire.
  double bytes_per_message = 20.0;
  /// In-memory bytes per serialized byte while buffered (object headers,
  /// boxing; ~1.2 for C++, ~2.5 for JVM heaps).
  double message_memory_overhead = 1.2;

  /// Out-of-core execution (GraphD): buffered messages beyond
  /// ooc_budget_bytes spill to disk, and the edge partition streams from
  /// disk every round.
  bool out_of_core = false;
  double ooc_budget_bytes = 2.5 * (1ULL << 30);

  /// Synchronous rounds; async engines replace the barrier with
  /// fine-grained scheduling.
  bool synchronous = true;
  /// Barrier cost multiplier (partial-async Giraph < 1, async ~ 0).
  double barrier_factor = 1.0;

  /// Mirroring of high-degree vertices (Pregel+(mirror)); implies the
  /// broadcast-only message interface.
  bool mirroring = false;
  /// Vertices with degree above this get mirrors on neighbour machines.
  uint64_t mirror_degree_threshold = 64;

  /// Sender-side combining of same-target messages (GraphLab sync; also
  /// how Pregel combiners behave). Affects wire bytes, not the logical
  /// congestion count.
  bool combines_messages = false;
  /// Per-logical-message work relative to full message handling when the
  /// message is folded into an existing combiner entry (no serialization,
  /// no allocation — just the merge).
  double combined_work_fraction = 1.0;

  /// Asynchronous-engine costs (GraphLab async, Giraph async): distributed
  /// locking ~ machines, and message inflation under load because
  /// combining windows vanish.
  double lock_overhead_coefficient = 0.0;
  double async_message_inflation = 1.0;

  /// Facebook's Giraph improvement (Section 2.2): "split a message-heavy
  /// superstep into several sub-steps for message reduction". When > 0,
  /// a round whose in-memory message buffer would exceed this many bytes
  /// is executed as ceil(buffer / threshold) sub-steps: peak buffer
  /// memory is capped at the threshold at the price of one extra barrier
  /// per sub-step. 0 disables the mechanism (the paper evaluates stock
  /// system defaults; see bench/ablation_superstep_split).
  double superstep_split_threshold_bytes = 0.0;

  /// Default graph partitioning strategy ("hash" or "greedy-edge-cut").
  std::string partitioner = "hash";
};

/// Canonical profile for each paper system mode.
const SystemProfile& ProfileFor(SystemKind kind);

/// All seven modes, in the paper's Table 1 order.
const std::vector<SystemKind>& AllSystemKinds();

/// Paper display name, e.g. "Pregel+(mirror)".
const std::string& SystemName(SystemKind kind);

/// Reverse lookup by display name.
bool SystemKindFromName(const std::string& name, SystemKind* out);

}  // namespace vcmp

#endif  // VCMP_ENGINE_SYSTEM_PROFILE_H_
