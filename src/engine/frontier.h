#ifndef VCMP_ENGINE_FRONTIER_H_
#define VCMP_ENGINE_FRONTIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace vcmp {

/// Active-vertex frontier: a dense membership bitmap paired with a
/// sparse activation list.
///
/// The bitmap answers "is v active?" in O(1) during signal accumulation;
/// the list remembers activation order so a scheduling pass can visit
/// only the active vertices (in deterministic first-activation order)
/// instead of scanning the whole vertex space. Take() hands out the
/// list; membership bits persist until the consumer calls Deactivate(v)
/// — signals arriving for a vertex that is activated but not yet
/// consumed must keep folding into the same pending activation, not
/// schedule it twice.
///
/// Clear() wipes all membership, choosing its strategy by occupancy:
/// when the active set is a large fraction of the universe a bitmap
/// memset is cheaper; when it is sparse the bits are cleared per active
/// vertex (see kDenseClearPercent). Callers that Take() the list and
/// then Clear() without deactivating must not rely on the sparse path —
/// the engine deactivates every consumed vertex, so both paths see an
/// exact membership record.
class VertexFrontier {
 public:
  /// Dense/sparse switch: Clear() memsets the bitmap when active
  /// vertices exceed this percentage of the universe.
  static constexpr size_t kDenseClearPercent = 3;

  /// Sizes the frontier for vertices [0, universe) and clears all state.
  void Reset(VertexId universe);

  VertexId universe() const { return universe_; }
  size_t active_count() const { return active_count_; }

  /// Activates `v` if inactive: sets its bit and appends it to the
  /// pending list. Returns true iff the vertex was newly activated.
  bool Activate(VertexId v) {
    const uint64_t mask = uint64_t{1} << (v & 63);
    uint64_t& word = words_[v >> 6];
    if ((word & mask) != 0) return false;
    word |= mask;
    ++active_count_;
    pending_.push_back(v);
    return true;
  }

  bool IsActive(VertexId v) const {
    return (words_[v >> 6] & (uint64_t{1} << (v & 63))) != 0;
  }

  /// Clears `v`'s membership bit (the consumer has processed it).
  void Deactivate(VertexId v) {
    const uint64_t mask = uint64_t{1} << (v & 63);
    uint64_t& word = words_[v >> 6];
    if ((word & mask) == 0) return;
    word &= ~mask;
    --active_count_;
  }

  /// Moves the accumulated activation list out (first-activation order).
  /// Membership bits are NOT cleared — the consumer deactivates each
  /// vertex as it processes it.
  std::vector<VertexId> Take() {
    std::vector<VertexId> taken = std::move(pending_);
    pending_.clear();  // Moved-from vector is valid but unspecified.
    return taken;
  }

  /// Deactivates everything and drops the pending list. Occupancy-chosen:
  /// dense memset vs per-active-bit clear (see class comment).
  void Clear();

 private:
  std::vector<uint64_t> words_;
  std::vector<VertexId> pending_;
  VertexId universe_ = 0;
  size_t active_count_ = 0;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_FRONTIER_H_
