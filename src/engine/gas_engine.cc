#include "engine/gas_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "engine/frontier.h"
#include "obs/tracer.h"
#include "sim/round_load.h"

namespace vcmp {

namespace {

/// One logged Signal call (replayed later in deterministic order).
struct GasSignalEvent {
  VertexId target;
  double value;
  double multiplicity;
};

/// Per-processed-vertex record of a shard's event log.
struct GasVertexRecord {
  VertexId vertex;
  uint32_t first_event;
  uint32_t num_events = 0;
  double compute_units = 0.0;
  double residual_bytes = 0.0;
};

/// Shard-local GasContext for the synchronous sharded Process phase: it
/// only LOGS what the program did — signals, compute units, residual
/// bytes — keyed by processed vertex. The engine replays the logs in
/// fixed shard order through the real Context afterwards, so the global
/// accumulator/frontier/wire-stat folds happen in frontier order no
/// matter how shards were scheduled. rng() is reseeded per vertex from
/// (seed, pass, vertex), making draw sequences shard-layout invariant.
class GasShardLog : public GasContext {
 public:
  void Configure(uint64_t seed, uint64_t query) {
    seed_ = seed;
    query_ = query;
  }

  void BeginPass(uint64_t pass) {
    pass_ = pass;
    events_.clear();
    records_.clear();
  }

  void BeginVertex(VertexId v) {
    records_.push_back(GasVertexRecord{
        v, static_cast<uint32_t>(events_.size()), 0, 0.0, 0.0});
    current_ = &records_.back();
    rng_ = Rng(Rng::MixSeed(seed_, query_, pass_, v));
  }

  void Signal(VertexId target, double value, double multiplicity) override {
    events_.push_back(GasSignalEvent{target, value, multiplicity});
    ++current_->num_events;
  }
  void AddComputeUnits(double units) override {
    current_->compute_units += units;
  }
  void AddResidualBytes(double bytes) override {
    current_->residual_bytes += bytes;
  }
  Rng& rng() override { return rng_; }
  uint64_t pass() const override { return pass_; }

  const std::vector<GasSignalEvent>& events() const { return events_; }
  const std::vector<GasVertexRecord>& records() const { return records_; }

 private:
  uint64_t seed_ = 0;
  uint64_t query_ = 0;
  uint64_t pass_ = 0;
  Rng rng_{0};
  GasVertexRecord* current_ = nullptr;
  std::vector<GasSignalEvent> events_;
  std::vector<GasVertexRecord> records_;
};

constexpr uint32_t kDefaultGasShards = 16;

}  // namespace

/// Accumulator-based scheduling context shared by both modes.
class GasEngine::Context : public GasContext {
 public:
  Context(const GasEngine* engine, uint64_t query)
      : engine_(engine),
        query_(query),
        machines_(engine->partition_.num_machines),
        acc_(engine->graph_.NumVertices(), 0.0),
        residual_ledger_(machines_, 0.0),
        wire_stamp_(static_cast<size_t>(machines_) *
                        engine->graph_.NumVertices(),
                    0) {
    frontier_.Reset(engine->graph_.NumVertices());
    ResetPassCounters();
  }

  void Signal(VertexId target, double value, double multiplicity) override {
    acc_[target] += value;
    // Frontier membership: the first signal activates (and records) the
    // vertex; later signals — including ones arriving while the vertex
    // sits in an already-taken frontier awaiting consumption — fold into
    // the same pending activation.
    frontier_.Activate(target);
    // Pass 0 is Seed(): initial activations are machine-local state
    // initialisation, not traffic.
    if (pass_ == 0) return;
    uint32_t sender = sender_machine_;
    uint32_t dest = engine_->partition_.MachineOf(target);
    logical_signals_[sender] += multiplicity;
    double wire_units = multiplicity;
    if (engine_->options_.profile.combines_messages) {
      // Sender-side combining: the first signal from this machine to this
      // target within the pass creates a wire message, later ones merge.
      size_t stamp_index =
          static_cast<size_t>(sender) * engine_->graph_.NumVertices() +
          target;
      if (wire_stamp_[stamp_index] == pass_stamp_) {
        wire_units = 0.0;
      } else {
        wire_stamp_[stamp_index] = pass_stamp_;
        wire_units = 1.0;
      }
    }
    wire_signals_[sender] += wire_units;
    if (sender != dest) {
      wire_cross_out_[sender] += wire_units;
      wire_cross_in_[dest] += wire_units;
      logical_cross_[sender] += multiplicity;
    }
  }

  void AddComputeUnits(double units) override {
    compute_units_[sender_machine_] += units;
  }

  void AddResidualBytes(double bytes) override {
    residual_ledger_[sender_machine_] += bytes;
  }

  Rng& rng() override { return rng_; }
  uint64_t pass() const override { return pass_; }

  // --- engine-side helpers ---
  void BeginPass(uint64_t pass) {
    pass_ = pass;
    ++pass_stamp_;
    ResetPassCounters();
  }
  void SetSender(uint32_t machine) { sender_machine_ = machine; }

  /// Reseeds the context RNG for the serial (async) Process path — the
  /// same (seed, query, pass, vertex) mix the sharded path uses, so a
  /// program gets identical draws for a given activation in either mode.
  void BeginVertex(VertexId v) {
    rng_ = Rng(Rng::MixSeed(engine_->options_.seed, query_, pass_, v));
  }

  /// Reads the accumulated signal of v without consuming it.
  double PendingSignal(VertexId v) const { return acc_[v]; }

  /// Takes the accumulated signal of v and clears its scheduling mark.
  double Consume(VertexId v) {
    double value = acc_[v];
    acc_[v] = 0.0;
    frontier_.Deactivate(v);
    return value;
  }

  std::vector<VertexId> TakeFrontier() { return frontier_.Take(); }

  const std::vector<double>& logical_signals() const {
    return logical_signals_;
  }
  const std::vector<double>& wire_signals() const { return wire_signals_; }
  const std::vector<double>& wire_cross_out() const {
    return wire_cross_out_;
  }
  const std::vector<double>& wire_cross_in() const { return wire_cross_in_; }
  const std::vector<double>& logical_cross() const { return logical_cross_; }
  const std::vector<double>& compute_units() const { return compute_units_; }
  const std::vector<double>& residual_ledger() const {
    return residual_ledger_;
  }

 private:
  void ResetPassCounters() {
    logical_signals_.assign(machines_, 0.0);
    wire_signals_.assign(machines_, 0.0);
    wire_cross_out_.assign(machines_, 0.0);
    wire_cross_in_.assign(machines_, 0.0);
    logical_cross_.assign(machines_, 0.0);
    compute_units_.assign(machines_, 0.0);
  }

  const GasEngine* engine_;
  uint64_t query_;
  uint32_t machines_;
  uint64_t pass_ = 0;
  uint64_t pass_stamp_ = 1;
  uint32_t sender_machine_ = 0;
  Rng rng_{0};
  std::vector<double> acc_;
  /// Per-machine AddResidualBytes totals, accumulated over the whole run
  /// (folded in frontier/replay order — thread-count invariant).
  std::vector<double> residual_ledger_;
  /// Dense-bitmap + sparse-list active set (engine/frontier.h): O(1)
  /// membership tests during signal accumulation, Take() hands out only
  /// the activated vertices — no vertex-space scan per pass.
  VertexFrontier frontier_;
  std::vector<uint64_t> wire_stamp_;
  std::vector<double> logical_signals_;
  std::vector<double> wire_signals_;
  std::vector<double> wire_cross_out_;
  std::vector<double> wire_cross_in_;
  std::vector<double> logical_cross_;
  std::vector<double> compute_units_;
};

GasEngine::GasEngine(const Graph& graph, const Partitioning& partition,
                     GasOptions options)
    : graph_(graph), partition_(partition), options_(std::move(options)) {
  graph_share_bytes_.assign(partition_.num_machines, 0.0);
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    graph_share_bytes_[partition_.MachineOf(v)] +=
        sizeof(EdgeIndex) + graph_.OutDegree(v) * sizeof(VertexId);
  }
}

Result<GasResult> GasEngine::Run(GasVertexProgram& program) const {
  QueryContext ctx;
  return Run(program, ctx);
}

Result<GasResult> GasEngine::Run(GasVertexProgram& program,
                                 QueryContext& ctx) const {
  if (partition_.num_machines != options_.cluster.num_machines) {
    return Status::InvalidArgument(
        "partition machine count does not match cluster spec");
  }
  const uint32_t machines = partition_.num_machines;
  const SystemProfile& profile = options_.profile;
  const double scale = options_.stat_scale;
  const MachineSpec& machine_spec = options_.cluster.machine;
  CostModel cost_model(options_.cluster, profile, options_.cost);

  Context context(this, ctx.query_id);

  // Pool for the engine's parallel sections: the context's shared pool
  // when one is set (concurrent multi-query runs), else a private
  // per-run pool. Synchronous passes run the Process loop itself over
  // fixed frontier shards (logs replayed in shard order — see
  // GasShardLog); the asynchronous loop stays serial because in-pass
  // signal folding is its semantics.
  std::unique_ptr<ThreadPool> owned_pool;
  if (ctx.pool == nullptr) {
    const uint32_t thread_count = ThreadPool::ResolveThreads(
        options_.execution_threads, options_.clamp_threads_to_hardware);
    owned_pool = std::make_unique<ThreadPool>(thread_count - 1);
  }
  ThreadPool& pool = ctx.pool != nullptr ? *ctx.pool : *owned_pool;
  const uint32_t shards = options_.compute_shards == 0
                              ? kDefaultGasShards
                              : options_.compute_shards;
  std::vector<GasShardLog> shard_logs(profile.synchronous ? shards : 0);
  for (GasShardLog& log : shard_logs) {
    log.Configure(options_.seed, ctx.query_id);
  }
  const auto parallel_shards = [&](uint32_t count,
                                   const std::function<void(uint32_t)>& fn) {
    if (options_.enable_work_stealing) {
      pool.ParallelForStealable(count, fn);
    } else {
      pool.ParallelFor(count, fn);
    }
  };

  Tracer* const tracer = options_.tracer;
  uint32_t trace_track = options_.trace_track;
  if (tracer != nullptr && trace_track == GasOptions::kAutoTrack) {
    trace_track = tracer->AddTrack("gas", "passes");
  }

  GasResult result;
  const double replication_factor =
      options_.vertex_cut != nullptr
          ? options_.vertex_cut->ReplicationFactor()
          : 1.0;
  double total_processed_signals = 0.0;  // For async pricing.
  double total_activations = 0.0;
  double total_compute_units = 0.0;
  std::vector<double> cross_bytes_per_machine(machines, 0.0);

  context.BeginPass(0);
  context.SetSender(0);  // Seeding attributed to the master.
  program.Seed(context);

  std::vector<VertexId> frontier = context.TakeFrontier();
  for (uint64_t pass = 1; pass <= options_.max_passes && !frontier.empty();
       ++pass) {
    if (!profile.synchronous && options_.priority_scheduling) {
      // Priority scheduling: largest pending signal first. The tie-break
      // by vertex id makes the comparator a strict total order, so the
      // pool-sharded merge sort is bit-identical to a serial sort.
      ParallelSort(pool, frontier.begin(), frontier.end(),
                   [&](VertexId a, VertexId b) {
                     double sa = context.PendingSignal(a);
                     double sb = context.PendingSignal(b);
                     if (sa != sb) return sa > sb;
                     return a < b;
                   });
    }
    // Snapshot the pass's send-side stats while processing.
    context.BeginPass(pass);
    double pass_logical = 0.0;
    if (profile.synchronous) {
      // Sharded synchronous pass. Phase A: snapshot-consume every
      // frontier signal up front (serial, cheap) — all signals emitted in
      // this pass land in the NEXT pass's accumulators, the
      // bulk-synchronous semantics. Phase B: fixed contiguous frontier
      // shards run the programs concurrently, logging into per-shard
      // event logs (stealable; outputs are per-shard state only).
      // Phase C: replay the logs in shard order — equal to frontier
      // order — through the real signal path, so the accumulator and
      // wire-combining folds are bit-identical at every thread count and
      // every shard count.
      const size_t frontier_size = frontier.size();
      std::vector<double> signals(frontier_size);
      for (size_t i = 0; i < frontier_size; ++i) {
        signals[i] = context.Consume(frontier[i]);
      }
      const auto shard_begin = [&](uint32_t s) {
        return static_cast<size_t>(static_cast<uint64_t>(frontier_size) *
                                   s / shards);
      };
      parallel_shards(shards, [&](uint32_t s) {
        GasShardLog& log = shard_logs[s];
        log.BeginPass(pass);
        const size_t begin = shard_begin(s);
        const size_t end = shard_begin(s + 1);
        for (size_t i = begin; i < end; ++i) {
          log.BeginVertex(frontier[i]);
          program.Process(frontier[i], signals[i], log);
        }
      });
      for (uint32_t s = 0; s < shards; ++s) {
        const GasShardLog& log = shard_logs[s];
        for (const GasVertexRecord& record : log.records()) {
          context.SetSender(partition_.MachineOf(record.vertex));
          for (uint32_t e = 0; e < record.num_events; ++e) {
            const GasSignalEvent& event =
                log.events()[record.first_event + e];
            context.Signal(event.target, event.value, event.multiplicity);
          }
          if (record.compute_units != 0.0) {
            context.AddComputeUnits(record.compute_units);
          }
          if (record.residual_bytes != 0.0) {
            context.AddResidualBytes(record.residual_bytes);
          }
        }
      }
    } else {
      // Asynchronous scheduling is sequential by semantics: signals sent
      // to frontier vertices that have not been consumed yet fold into
      // the *current* pass (eager propagation — the behaviour the async
      // pricing models), which fixes a serial frontier order.
      for (VertexId v : frontier) {
        double signal = context.Consume(v);
        context.SetSender(partition_.MachineOf(v));
        context.BeginVertex(v);
        program.Process(v, signal, context);
      }
    }
    total_activations += frontier.size();
    result.passes = pass;

    ClusterRoundLoad loads(machines);
    // Received == sent within the pass (accumulators are consumed next
    // pass; attribute the traffic to this pass).
    double pass_messages = 0.0;
    // Machines are independent here (shard m touches only loads[m] and
    // cross_bytes_per_machine[m]); the scalar reductions stay serial below
    // so their floating-point order never depends on the thread count.
    pool.ParallelFor(machines, [&](uint32_t m) {
      MachineRoundLoad& load = loads[m];
      load.recv_messages = context.logical_signals()[m] * scale;
      // Combining shrinks wire traffic, not gather work: every logical
      // signal still folds into the accumulator, at the merged-entry
      // discount.
      load.processed_messages =
          context.logical_signals()[m] * scale *
          (profile.combines_messages ? profile.combined_work_fraction
                                     : 1.0);
      load.cross_bytes_out =
          context.wire_cross_out()[m] * profile.bytes_per_message * scale;
      load.cross_bytes_in =
          context.wire_cross_in()[m] * profile.bytes_per_message * scale;
      load.buffered_message_bytes =
          context.wire_signals()[m] * profile.bytes_per_message * scale;
      load.compute_units = context.compute_units()[m] * scale;
      load.state_bytes =
          (graph_share_bytes_[m] + program.StateBytes(m)) * scale;
      load.residual_bytes = (program.ResidualBytes(m) +
                             context.residual_ledger()[m]) *
                            scale;
      // vcmp:deterministic-reduction(slot m is owned by shard m; one add per pass in fixed pass order, thread-count invariant)
      cross_bytes_per_machine[m] += load.cross_bytes_out;
    });
    for (uint32_t m = 0; m < machines; ++m) {
      pass_messages += loads[m].recv_messages;
      pass_logical += context.logical_signals()[m];
      total_compute_units += context.compute_units()[m];
    }
    // Activations per machine for the cost model's per-vertex term.
    for (VertexId v : frontier) {
      loads[partition_.MachineOf(v)].active_vertices += scale;
    }
    if (options_.vertex_cut != nullptr) {
      // Vertex-cut deployment: the wire traffic is replica
      // synchronisation, not per-edge signals — each active vertex
      // exchanges 2*(replicas-1) messages with its mirrors.
      const VertexCut& cut = *options_.vertex_cut;
      std::vector<double> replica_sync(machines, 0.0);
      for (VertexId v : frontier) {
        replica_sync[cut.master[v]] +=
            2.0 * (static_cast<double>(cut.replicas[v]) - 1.0);
      }
      for (uint32_t m = 0; m < machines; ++m) {
        double bytes = replica_sync[m] * profile.bytes_per_message * scale;
        loads[m].cross_bytes_out = bytes;
        loads[m].cross_bytes_in = bytes;
        loads[m].state_bytes *= replication_factor;
        cross_bytes_per_machine[m] +=
            bytes - context.wire_cross_out()[m] *
                        profile.bytes_per_message * scale;
      }
    }
    result.messages += pass_messages;
    total_processed_signals += pass_logical;

    if (profile.synchronous) {
      RoundStats stats = cost_model.EvaluateRound(loads, 0.0);
      if (tracer != nullptr) {
        // Same anchoring discipline as SyncEngine: pass boundaries ride
        // the running result.seconds sum; the compute/barrier children
        // are clamped into the pass span.
        const double offset = options_.trace_time_offset_seconds;
        const double t0 = offset + result.seconds;
        const double t_end =
            offset + (result.seconds + stats.total_seconds);
        tracer->Begin(trace_track, "pass", t0,
                      {{"pass", static_cast<double>(pass)},
                       {"signals", pass_messages},
                       {"active_vertices",
                        static_cast<double>(frontier.size()) * scale}});
        double t = std::min(
            t0 + (stats.total_seconds - stats.barrier_seconds), t_end);
        tracer->Begin(trace_track, "compute", t0);
        tracer->End(trace_track, t);
        tracer->Begin(trace_track, "barrier", t);
        tracer->End(trace_track, t_end);
        tracer->End(trace_track, t_end);
        tracer->Gauge(trace_track, "memory_bytes", t_end,
                      stats.max_memory_bytes);
      }
      result.seconds += stats.total_seconds;
      result.barrier_seconds += stats.barrier_seconds;
      result.peak_memory_bytes =
          std::max(result.peak_memory_bytes, stats.max_memory_bytes);
      if (stats.overflow ||
          result.seconds > options_.cost.overload_cutoff_seconds) {
        result.overloaded = true;
        break;
      }
    } else {
      // Track memory only; async time is priced once at the end.
      for (const MachineRoundLoad& load : loads) {
        double demand = load.state_bytes + load.residual_bytes +
                        load.buffered_message_bytes *
                            profile.message_memory_overhead;
        result.peak_memory_bytes =
            std::max(result.peak_memory_bytes, demand);
        if (demand > machine_spec.memory_bytes) result.overloaded = true;
      }
      if (result.overloaded) break;
    }

    frontier = context.TakeFrontier();
  }
  result.activations = total_activations * scale;
  result.residual_bytes_per_machine = context.residual_ledger();

  if (!profile.synchronous && !result.overloaded) {
    // Asynchronous pricing: no barriers; work flows through a shared
    // thread pool, each activation acquiring a distributed lock whose
    // contention grows with the cluster-wide fiber count. Convergent
    // programs need fewer updates under eager scheduling
    // (AsyncWorkFactor); cross-machine signals are serialized one by one
    // (no combining window) and inflated by retries.
    const double work_factor = program.AsyncWorkFactor();
    const double effective_cores =
        std::max(1.0,
                 machine_spec.cores * options_.cost.core_utilization) *
        machine_spec.core_speed;
    double local_signals = total_processed_signals * scale * work_factor;
    double total_cross_logical = 0.0;
    for (double bytes : cross_bytes_per_machine) {
      total_cross_logical += bytes / profile.bytes_per_message;
    }
    double cross_signals = total_cross_logical * work_factor *
                           profile.async_message_inflation;
    double compute_seconds =
        (options_.cost.seconds_per_message *
             profile.combined_work_fraction *
             (local_signals + cross_signals) +
         options_.cost.seconds_per_active_vertex * result.activations *
             work_factor +
         options_.cost.seconds_per_compute_unit * total_compute_units *
             scale * work_factor) *
        profile.compute_factor / (effective_cores * machines);
    // Per-activation lock wait grows with the cluster-wide fiber count
    // (1000 fibers/machine, Section 4.8); the work itself parallelises, so
    // the lock plateau is what stops async from scaling.
    double lock_seconds = profile.lock_overhead_coefficient *
                          options_.cost.seconds_per_active_vertex *
                          result.activations * work_factor *
                          std::log2(static_cast<double>(machines) + 1.0);
    double cross_bytes_max = 0.0;
    for (double bytes : cross_bytes_per_machine) {
      cross_bytes_max = std::max(cross_bytes_max, bytes);
    }
    double network_seconds = cross_bytes_max * work_factor *
                             profile.async_message_inflation /
                             machine_spec.network_bandwidth;
    result.lock_seconds = lock_seconds;
    result.seconds =
        std::max(compute_seconds + lock_seconds, network_seconds);
    result.messages *= profile.async_message_inflation * work_factor;
    for (double& bytes : cross_bytes_per_machine) {
      bytes *= profile.async_message_inflation * work_factor;
    }
  }

  double total_cross = 0.0;
  for (double bytes : cross_bytes_per_machine) total_cross += bytes;
  result.network_bytes_per_machine =
      machines == 0 ? 0.0 : total_cross / machines;

  if (result.overloaded) {
    result.seconds = std::max(result.seconds,
                              options_.cost.overload_cutoff_seconds);
  }
  if (tracer != nullptr) {
    if (!profile.synchronous) {
      // Async has no per-pass simulated timeline (time is priced once,
      // above): one span covers the whole execution.
      const double offset = options_.trace_time_offset_seconds;
      tracer->Begin(trace_track, "async-execution", offset,
                    {{"passes", static_cast<double>(result.passes)},
                     {"activations", result.activations},
                     {"lock_seconds", result.lock_seconds}});
      tracer->End(trace_track, offset + result.seconds);
    }
    tracer->Add("gas.messages", result.messages);
    tracer->Add("gas.passes", static_cast<double>(result.passes));
    tracer->Add("gas.seconds", result.seconds);
    tracer->Add("gas.activations", result.activations);
    tracer->Peak("gas.peak_memory_bytes", result.peak_memory_bytes);
  }
  return result;
}

}  // namespace vcmp
