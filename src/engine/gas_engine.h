#ifndef VCMP_ENGINE_GAS_ENGINE_H_
#define VCMP_ENGINE_GAS_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "engine/query_context.h"
#include "engine/system_profile.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "sim/cluster_spec.h"
#include "graph/vertex_cut.h"
#include "sim/cost_model.h"

namespace vcmp {

class GasEngine;
class Tracer;

/// Context handed to GasVertexProgram::Process.
class GasContext {
 public:
  virtual ~GasContext() = default;

  /// Sends `value` toward `target`'s accumulator and schedules it.
  /// `multiplicity` is the logical message count (walk counts etc.).
  virtual void Signal(VertexId target, double value, double multiplicity) = 0;

  /// Extra modelled compute in edge-scan units.
  virtual void AddComputeUnits(double units) = 0;

  /// Records bytes of residual (intermediate-result) memory produced by
  /// the current vertex. The engine attributes them to the vertex's
  /// machine and folds them in frontier order, so several compute shards
  /// of one machine can run concurrently without the program keeping a
  /// shared per-machine accumulator. Accumulated totals are returned in
  /// GasResult::residual_bytes_per_machine.
  virtual void AddResidualBytes(double bytes) { (void)bytes; }

  /// Deterministic random stream of the CURRENT vertex: reseeded from
  /// (engine seed, pass, vertex) at each Process call, so draw sequences
  /// never depend on the shard layout, thread count or frontier order.
  virtual Rng& rng() = 0;
  /// Scheduling pass (== superstep in sync mode).
  virtual uint64_t pass() const = 0;
};

/// GraphLab-style Gather-Apply-Scatter program over a sum accumulator:
/// signals to a vertex are summed (the gather), Process applies the update
/// and scatters new signals. Both the synchronous engine (bulk passes with
/// barriers) and the asynchronous engine (barrier-free scheduling with
/// distributed locks) execute the same program.
class GasVertexProgram {
 public:
  virtual ~GasVertexProgram() = default;

  /// Emits the initial signals / performs initial activations.
  virtual void Seed(GasContext& context) = 0;

  /// Handles the accumulated signal for v (sum of Signal values since the
  /// last call).
  virtual void Process(VertexId v, double signal, GasContext& context) = 0;

  virtual double StateBytes(uint32_t machine) const {
    (void)machine;
    return 0.0;
  }
  virtual double ResidualBytes(uint32_t machine) const {
    (void)machine;
    return 0.0;
  }

  /// Work multiplier under asynchronous scheduling relative to bulk
  /// passes. Convergent fixed-point computations (PageRank) propagate
  /// eagerly and need fewer total updates (< 1); fixed-work computations
  /// (walk simulation) cannot be reduced (= 1).
  virtual double AsyncWorkFactor() const { return 1.0; }
};

/// Result of a GAS execution.
struct GasResult {
  double seconds = 0.0;
  bool overloaded = false;
  uint64_t passes = 0;
  /// Vertex activations processed.
  double activations = 0.0;
  /// Logical signals exchanged.
  double messages = 0.0;
  /// Network bytes per machine over the whole run (Table 4's
  /// bytes-per-machine column).
  double network_bytes_per_machine = 0.0;
  double peak_memory_bytes = 0.0;
  double barrier_seconds = 0.0;
  double lock_seconds = 0.0;
  /// Residual bytes recorded via GasContext::AddResidualBytes over the
  /// whole run, per machine, generated-graph scale (mirrors
  /// EngineResult::residual_bytes_per_machine).
  std::vector<double> residual_bytes_per_machine;
};

/// Options for a GAS execution.
struct GasOptions {
  ClusterSpec cluster = ClusterSpec::Galaxy8();
  /// GraphLab or GraphLab(async) profile; `synchronous` selects the mode.
  SystemProfile profile;
  CostParams cost;
  double stat_scale = 1.0;
  uint64_t seed = 7;
  uint64_t max_passes = 8192;
  /// Threads for the engine's parallel sections, served by the same
  /// persistent ThreadPool as SyncEngine. In synchronous mode the Process
  /// loop itself runs shard-parallel: the pass's frontier signals are
  /// snapshot-consumed up front, fixed contiguous frontier shards log
  /// their signals/compute/residual into per-shard event logs, and the
  /// logs are replayed serially in shard order through the real signal
  /// path — so results are bit-identical for any thread count and any
  /// shard count (DESIGN.md section 12). The asynchronous Process loop
  /// stays sequential by semantics: signals to not-yet-consumed frontier
  /// vertices fold into the current pass. 0 = auto (hardware threads).
  uint32_t execution_threads = 1;
  /// Clamp the thread count to the hardware concurrency (same contract as
  /// EngineOptions::clamp_threads_to_hardware — results are invariant, so
  /// oversubscription only adds context switches). Tests that must run an
  /// exact thread count disable this.
  bool clamp_threads_to_hardware = true;
  /// Fixed number of compute shards the synchronous frontier is split
  /// into (contiguous segments). Like the sync engine, deliberately NOT
  /// derived from the thread count. 0 = auto (16).
  uint32_t compute_shards = 0;
  /// Allow idle threads to steal leftover shards from statically-chosen
  /// victims (ThreadPool::ParallelForStealable); steal order derives from
  /// shard indices, never timing. Outputs are identical either way.
  bool enable_work_stealing = true;
  /// GraphLab's priority scheduler (async mode): process vertices with the
  /// largest pending signal first. Convergent programs settle heavy mass
  /// early and need fewer activations than FIFO order.
  bool priority_scheduling = false;
  /// --- Observability (src/obs) ---
  /// When set, synchronous passes emit nested pass > {compute, barrier}
  /// spans plus memory gauges; asynchronous runs (no per-pass simulated
  /// timeline — time is priced once at the end) emit a single execution
  /// span. Timestamps are simulated seconds offset by
  /// trace_time_offset_seconds. Null = off (one branch per pass).
  Tracer* tracer = nullptr;
  /// kAutoTrack registers a fresh "gas/passes" track at Run().
  uint32_t trace_track = kAutoTrack;
  double trace_time_offset_seconds = 0.0;
  static constexpr uint32_t kAutoTrack = ~0u;

  /// PowerGraph-style vertex-cut deployment (optional; must outlive the
  /// engine). When set, cross-machine traffic is replica synchronisation —
  /// each active vertex exchanges 2*(replicas-1) messages per pass (gather
  /// partials in, apply broadcast out) — and vertex state is replicated
  /// accordingly. This bounds hub traffic by the replication factor
  /// instead of the hub degree.
  const VertexCut* vertex_cut = nullptr;
};

/// Executes a GasVertexProgram.
///
/// Synchronous mode runs bulk passes with a barrier each, combining
/// same-target signals at the sender (GraphLab sync's message merging) and
/// pricing each pass through the CostModel. Asynchronous mode executes the
/// same scheduling order without barriers or combining, pricing the run
/// with per-activation distributed-lock overhead that grows with the
/// cluster's fiber count (Section 4.8).
///
/// Like SyncEngine, the engine is immutable after construction and Run is
/// const: all run state lives on Run's stack, so several queries can Run
/// against one engine concurrently, each with its own QueryContext
/// (DESIGN.md section 14).
class GasEngine {
 public:
  GasEngine(const Graph& graph, const Partitioning& partition,
            GasOptions options);

  GasEngine(const GasEngine&) = delete;
  GasEngine& operator=(const GasEngine&) = delete;

  /// Runs `program` as query_id 0 on a private per-run pool (the
  /// historical single-query behavior, bit for bit).
  Result<GasResult> Run(GasVertexProgram& program) const;

  /// Re-entrant form: runs `program` with the context's query_id (which
  /// namespaces the per-vertex RNG streams) and pool. One context per
  /// in-flight query.
  Result<GasResult> Run(GasVertexProgram& program, QueryContext& ctx) const;

  const GasOptions& options() const { return options_; }

 private:
  class Context;

  const Graph& graph_;
  const Partitioning& partition_;
  GasOptions options_;
  std::vector<double> graph_share_bytes_;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_GAS_ENGINE_H_
