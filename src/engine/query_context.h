#ifndef VCMP_ENGINE_QUERY_CONTEXT_H_
#define VCMP_ENGINE_QUERY_CONTEXT_H_

#include <cstdint>
#include <memory>

namespace vcmp {

class ThreadPool;

/// Per-query execution state for re-entrant engine runs (DESIGN.md
/// section 14).
///
/// The engines are immutable once constructed: everything a run mutates —
/// message buffers, staging arenas, per-vertex logs — lives in the
/// QueryContext the caller passes to Run. Concurrent queries therefore
/// share one engine (and its graph, partition and mirror plan) by const
/// reference and never touch each other's state; per-query bit-identity
/// follows because each run is a pure function of (program, engine
/// options, query_id) with no cross-query channel.
///
/// A context is NOT thread-safe: exactly one query drives it at a time.
/// Reusing one context across the batches of a query keeps buffer
/// capacity warm across Run calls, exactly like the engine member fields
/// it replaced.
struct QueryContext {
  QueryContext() = default;
  explicit QueryContext(uint64_t id) : query_id(id) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Random-stream namespace: every per-vertex reseed inside a run draws
  /// from Rng::MixSeed(seed, query_id, round, v), so two queries sharing
  /// a base seed still see decorrelated streams. Query 0 reproduces the
  /// historical single-query streams bit for bit.
  uint64_t query_id = 0;

  /// Pool to fan compute shards out on. Null keeps the historical
  /// behavior (each engine Run creates a private pool from its thread
  /// options); non-null shares the pool across queries — its per-call
  /// completion tracking keeps concurrent fan-outs independent.
  ThreadPool* pool = nullptr;

  /// Reusable engine-owned buffers (workers, shard sinks). The concrete
  /// type is private to the engine, so it hangs off a virtual base;
  /// created lazily on first Run and reused while the shapes match.
  struct Scratch {
    virtual ~Scratch() = default;
  };
  std::unique_ptr<Scratch> sync_scratch;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_QUERY_CONTEXT_H_
