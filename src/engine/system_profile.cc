#include "engine/system_profile.h"

#include "common/logging.h"

namespace vcmp {
namespace {

SystemProfile MakeGiraph() {
  SystemProfile p;
  p.kind = SystemKind::kGiraph;
  p.name = "Giraph";
  // JVM: slower per-message processing and fatter in-memory objects, but
  // Facebook's serialization work keeps wire bytes moderate.
  p.compute_factor = 2.6;
  p.bytes_per_message = 28.0;
  p.message_memory_overhead = 3.4;
  p.barrier_factor = 1.6;  // Hadoop-based coordination.
  return p;
}

SystemProfile MakeGiraphAsync() {
  SystemProfile p = MakeGiraph();
  p.kind = SystemKind::kGiraphAsync;
  p.name = "Giraph(async)";
  // Receiving and processing decoupled into separate threads: part of the
  // barrier is hidden, at slight extra memory for the double buffering.
  p.barrier_factor = 0.8;
  p.message_memory_overhead = 3.6;
  p.compute_factor = 2.4;
  return p;
}

SystemProfile MakePregelPlus() {
  SystemProfile p;
  p.kind = SystemKind::kPregelPlus;
  p.name = "Pregel+";
  p.compute_factor = 1.0;
  p.bytes_per_message = 20.0;
  p.message_memory_overhead = 1.2;
  return p;
}

SystemProfile MakePregelPlusMirror() {
  SystemProfile p = MakePregelPlus();
  p.kind = SystemKind::kPregelPlusMirror;
  p.name = "Pregel+(mirror)";
  p.mirroring = true;
  p.mirror_degree_threshold = 64;
  return p;
}

SystemProfile MakeGraphD() {
  SystemProfile p = MakePregelPlus();
  p.kind = SystemKind::kGraphD;
  p.name = "GraphD";
  p.out_of_core = true;
  p.ooc_budget_bytes = 2.5 * static_cast<double>(1ULL << 30);
  // Streaming adds per-message handling cost.
  p.compute_factor = 1.15;
  return p;
}

SystemProfile MakeGraphLab() {
  SystemProfile p;
  p.kind = SystemKind::kGraphLab;
  p.name = "GraphLab";
  p.compute_factor = 1.25;
  p.bytes_per_message = 24.0;
  p.message_memory_overhead = 1.4;
  p.combines_messages = true;  // Sync engine merges same-target updates.
  p.combined_work_fraction = 0.3;
  p.partitioner = "greedy-edge-cut";
  return p;
}

SystemProfile MakeGraphLabAsync() {
  SystemProfile p = MakeGraphLab();
  p.kind = SystemKind::kGraphLabAsync;
  p.name = "GraphLab(async)";
  p.synchronous = false;
  p.barrier_factor = 0.0;
  p.combines_messages = false;  // No combining window without rounds.
  p.combined_work_fraction = 0.3;  // Local accumulator folds stay cheap.
  // Distributed locks serialise neighbouring updates; the cost grows with
  // the fiber count, i.e. with the number of machines (Section 4.8).
  p.lock_overhead_coefficient = 0.008;
  p.async_message_inflation = 1.35;
  return p;
}

}  // namespace

const SystemProfile& ProfileFor(SystemKind kind) {
  // Leaked singletons: trivially-destructible statics only (Google style).
  // vcmp:lint-allow(C1, one-time registry leak at static init; never on a round path)
  static const auto& profiles = *new std::vector<SystemProfile>{
      MakeGiraph(),           MakeGiraphAsync(), MakePregelPlus(),
      MakePregelPlusMirror(), MakeGraphD(),      MakeGraphLab(),
      MakeGraphLabAsync(),
  };
  size_t index = static_cast<size_t>(kind);
  VCMP_CHECK(index < profiles.size());
  return profiles[index];
}

const std::vector<SystemKind>& AllSystemKinds() {
  // vcmp:lint-allow(C1, one-time registry leak at static init; never on a round path)
  static const auto& all = *new std::vector<SystemKind>{
      SystemKind::kGiraph,      SystemKind::kGiraphAsync,
      SystemKind::kPregelPlus,  SystemKind::kPregelPlusMirror,
      SystemKind::kGraphD,      SystemKind::kGraphLab,
      SystemKind::kGraphLabAsync,
  };
  return all;
}

const std::string& SystemName(SystemKind kind) {
  return ProfileFor(kind).name;
}

bool SystemKindFromName(const std::string& name, SystemKind* out) {
  for (SystemKind kind : AllSystemKinds()) {
    if (SystemName(kind) == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace vcmp
