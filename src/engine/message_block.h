#ifndef VCMP_ENGINE_MESSAGE_BLOCK_H_
#define VCMP_ENGINE_MESSAGE_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "engine/message.h"
#include "graph/graph.h"

namespace vcmp {

/// One contiguous (target, tag) group produced by inbox grouping:
/// payload elements [begin, end) of the worker's grouped value /
/// multiplicity columns. Runs tile the grouped inbox in ascending
/// (target, tag) order, so consecutive runs with equal `target` are the
/// per-tag groups of one vertex.
struct MessageRun {
  VertexId target = 0;
  uint32_t tag = 0;
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
};

/// Struct-of-arrays message buffer: flat target/tag/value/multiplicity
/// columns sharing one size/capacity.
///
/// This is the engine's replacement for `std::vector<Message>` inboxes
/// and outboxes. The column layout means grouping and delivery move
/// 4- and 8-byte lanes instead of 24-byte structs, and the payload
/// columns (`values`/`multiplicities`) can be handed to task kernels as
/// contiguous arrays. Capacity only grows (geometric, epoch-arena
/// style): Clear() keeps the allocation, so steady-state rounds perform
/// no per-round reallocation.
class MessageBlock {
 public:
  /// Real bytes one element occupies across the four columns — the
  /// figure spill files and the out-of-core governor account with.
  static constexpr size_t kBytesPerMessage =
      sizeof(VertexId) + sizeof(uint32_t) + 2 * sizeof(double);

  MessageBlock() = default;
  MessageBlock(MessageBlock&&) noexcept = default;
  MessageBlock& operator=(MessageBlock&&) noexcept = default;
  MessageBlock(const MessageBlock&) = delete;
  MessageBlock& operator=(const MessageBlock&) = delete;

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  /// Logically empties the block; capacity is retained.
  void Clear() { size_ = 0; }

  /// Ensures capacity for at least `n` elements (geometric growth).
  void Reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void PushBack(VertexId target, uint32_t tag, double value,
                double multiplicity) {
    if (size_ == capacity_) Grow(size_ + 1);
    targets_[size_] = target;
    tags_[size_] = tag;
    values_[size_] = value;
    multiplicities_[size_] = multiplicity;
    ++size_;
  }

  void PushBack(const Message& message) {
    PushBack(message.target, message.tag, message.value,
             message.multiplicity);
  }

  /// Appends all of `other`'s elements (column-wise memcpy).
  void Append(const MessageBlock& other);

  /// Appends `n` elements given as raw column pointers — the spill
  /// restore and capped-delivery paths move column slices directly.
  void AppendColumns(const VertexId* targets, const uint32_t* tags,
                     const double* values, const double* multiplicities,
                     size_t n);

  /// Sets the size to `n` without writing the elements. The parallel
  /// delivery path sizes the destination inbox once, then concurrent
  /// copy tasks fill disjoint [offset, offset + m) slices via WriteAt.
  /// Elements not subsequently written are indeterminate.
  void ResizeUninitialized(size_t n) {
    Reserve(n);
    size_ = n;
  }

  /// Copies all of `other`'s elements into this block's columns starting
  /// at `offset` (column-wise memcpy; [offset, offset + other.size())
  /// must be within size()). Distinct tasks writing disjoint slices of
  /// one block are race-free.
  void WriteAt(size_t offset, const MessageBlock& other);

  /// Removes the first `n` elements (column-wise memmove); capacity is
  /// retained. Used by the spill staging page after flushing.
  void EraseFront(size_t n);

  /// Shrinks to the first `n` elements; no-op when already smaller.
  void Truncate(size_t n) {
    if (n < size_) size_ = n;
  }

  /// O(1) exchange of the two blocks' storage.
  void Swap(MessageBlock& other) noexcept;

  Message At(size_t i) const {
    return Message{targets_[i], tags_[i], values_[i], multiplicities_[i]};
  }

  void Set(size_t i, const Message& message) {
    targets_[i] = message.target;
    tags_[i] = message.tag;
    values_[i] = message.value;
    multiplicities_[i] = message.multiplicity;
  }

  VertexId* targets() { return targets_.get(); }
  const VertexId* targets() const { return targets_.get(); }
  uint32_t* tags() { return tags_.get(); }
  const uint32_t* tags() const { return tags_.get(); }
  double* values() { return values_.get(); }
  const double* values() const { return values_.get(); }
  double* multiplicities() { return multiplicities_.get(); }
  const double* multiplicities() const { return multiplicities_.get(); }

 private:
  void Grow(size_t need);

  std::unique_ptr<VertexId[]> targets_;
  std::unique_ptr<uint32_t[]> tags_;
  std::unique_ptr<double[]> values_;
  std::unique_ptr<double[]> multiplicities_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_MESSAGE_BLOCK_H_
