#include "engine/sync_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/wall_clock.h"
#include "obs/shard_spans.h"
#include "obs/tracer.h"
#include "ooc/ooc_runtime.h"

namespace vcmp {

namespace {

/// Default shard count per machine when compute_shards_per_machine is 0.
/// Fixed (never derived from the thread count) so the shard plan — and
/// with it every reduction order — is a pure function of the round's
/// inbox.
constexpr uint32_t kDefaultShardsPerMachine = 16;

}  // namespace

/// Contiguous item ranges assigning one machine's round to its compute
/// shards. `bounds` has shards + 1 entries; shard s covers items
/// [bounds[s], bounds[s + 1]) — run indices for message rounds, positions
/// into vertices_by_machine_ for the seeding superstep. Cuts always land
/// on vertex boundaries (all runs of one target stay in one shard), so
/// per-vertex RNG reseeding and active-vertex counting see whole
/// vertices. The plan depends only on the shard count and the round's
/// payload weights: it is identical at every thread count.
struct SyncEngine::ShardPlan {
  std::vector<uint32_t> bounds;

  /// Greedy proportional cut: shard s ends at the first vertex boundary
  /// where the cumulative weight reaches total * (s + 1) / shards.
  void BuildForVertices(const Graph& graph,
                        const std::vector<VertexId>& vertices,
                        uint32_t shards) {
    uint64_t total = 0;
    for (VertexId v : vertices) total += 1 + graph.OutDegree(v);
    bounds.assign(shards + 1, 0);
    const uint32_t n = static_cast<uint32_t>(vertices.size());
    uint32_t i = 0;
    uint64_t cum = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      bounds[s] = i;
      const uint64_t target = total * (s + 1) / shards;
      while (i < n && cum < target) {
        cum += 1 + graph.OutDegree(vertices[i]);
        ++i;
      }
    }
    bounds[shards] = n;
  }

  /// Same cut, weighted by a position-indexed degree column (the real
  /// out-of-core path streams degrees from the state file instead of
  /// touching the CSR; the values are identical to graph.OutDegree, so
  /// the resulting plan is too).
  void BuildForDegrees(const std::vector<uint32_t>& degrees,
                       uint32_t shards) {
    uint64_t total = 0;
    for (uint32_t d : degrees) total += 1 + static_cast<uint64_t>(d);
    bounds.assign(shards + 1, 0);
    const uint32_t n = static_cast<uint32_t>(degrees.size());
    uint32_t i = 0;
    uint64_t cum = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      bounds[s] = i;
      const uint64_t target = total * (s + 1) / shards;
      while (i < n && cum < target) {
        cum += 1 + static_cast<uint64_t>(degrees[i]);
        ++i;
      }
    }
    bounds[shards] = n;
  }

  void BuildForRuns(std::span<const MessageRun> runs, uint32_t shards) {
    uint64_t total = 0;
    for (const MessageRun& run : runs) total += run.size() + 1;
    bounds.assign(shards + 1, 0);
    const uint32_t n = static_cast<uint32_t>(runs.size());
    uint32_t i = 0;
    uint64_t cum = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      bounds[s] = i;
      const uint64_t target = total * (s + 1) / shards;
      while (i < n && cum < target) {
        const VertexId vertex = runs[i].target;
        while (i < n && runs[i].target == vertex) {  // Whole vertex.
          cum += runs[i].size() + 1;
          ++i;
        }
      }
    }
    bounds[shards] = n;
  }
};

/// Result of merging one (sender, destination) outbox from the sender's
/// shard arenas. Written by exactly one merge task, read serially after
/// the merge barrier.
struct SyncEngine::MergeSlot {
  /// Logical / wire traffic the sender pushed INTO the destination
  /// machine, folded by walking the shard arenas in shard order — i.e.
  /// the sender's emission order, which shard boundaries cannot change.
  double logical_cross_in = 0.0;
  double wire_cross_in = 0.0;
  /// Combining only: distinct (target, tag) keys created in this outbox
  /// (integer-valued; the sender's wire_sent contribution).
  double new_wire_keys = 0.0;
  uint64_t merge_ns = 0;

  void Clear() { *this = MergeSlot{}; }
};

/// Per-(machine, shard) MessageSink: raw staging arenas (one per
/// destination machine), per-vertex log records, and a per-vertex-reseeded
/// random stream.
///
/// The sharded compute phase never writes shared machine state: every
/// message lands in this shard's arena, every statistic in the current
/// vertex's log record, and every RNG draw comes from a stream seeded by
/// (seed, round, vertex). Cross-shard reductions happen after the barrier
/// in fixed orders — arena concatenation in shard order equals the serial
/// emission order, and log records concatenated across shards equal the
/// machine's vertex order — so results are bit-identical at every thread
/// count AND every shard count (per-shard partial sums would only give
/// per-shard-count invariance).
class SyncEngine::ShardSink : public MessageSink {
 public:
  /// Everything one vertex contributed to its machine's round statistics.
  /// Folded (per machine) in vertex order during finalization; the fields
  /// themselves accumulate in the vertex's own emission order, entirely
  /// within one shard.
  struct VertexLog {
    double compute_units = 0.0;
    double aggregate = 0.0;
    double logical_sent = 0.0;
    /// Wire counts are only meaningful without a combiner (raw staging:
    /// one wire unit per logical unit; mirror broadcasts count mirror
    /// hops). Under combining the merge counts distinct keys instead.
    double wire_sent = 0.0;
    double logical_cross = 0.0;
    double wire_cross = 0.0;
    double residual_bytes = 0.0;
    bool aggregate_used = false;
  };

  ShardSink() = default;

  /// (Re)binds the sink to an engine for one Run. The engine pointer is
  /// refreshed every call because sinks persist in the QueryContext
  /// across a query's batches, while the runner constructs a fresh
  /// engine per batch.
  void Configure(const SyncEngine* engine, uint32_t machine,
                 uint32_t num_machines, uint64_t query) {
    engine_ = engine;
    machine_ = machine;
    num_machines_ = num_machines;
    query_ = query;
    machine_of_ = engine_->partition_.assignment.data();
    mirror_broadcast_only_ = engine_->options_.profile.mirroring;
    arenas_.resize(num_machines);
    cross_weights_.resize(num_machines);
  }

  void BeginRound(uint64_t round) {
    round_ = round;
    for (MessageBlock& arena : arenas_) arena.Clear();
    for (std::vector<double>& weights : cross_weights_) weights.clear();
    log_.clear();
    cur_ = nullptr;
  }

  /// Opens the log record for `v` and reseeds the random stream from
  /// (seed, query, round, v): the draw sequence a vertex sees depends
  /// only on those coordinates, never on which shard, thread or
  /// concurrency level ran it. Query 0 keeps the historical
  /// (seed, round, v) stream bit for bit.
  void BeginVertex(VertexId v) {
    log_.emplace_back();
    cur_ = &log_.back();
    rng_ = Rng(Rng::MixSeed(engine_->options_.seed, query_, round_, v));
  }

  void Send(VertexId target, uint32_t tag, double value,
            double multiplicity) override {
    VCMP_CHECK(!mirror_broadcast_only_)
        << "Pregel+(mirror) only exposes the broadcast interface";
    SendInternal(target, tag, value, multiplicity);
  }

  void Broadcast(VertexId from, uint32_t tag, double value,
                 double multiplicity_per_neighbor) override {
    const Graph& graph = engine_->graph_;
    const MirrorPlan* plan = engine_->mirror_plan_.get();
    if (plan != nullptr && plan->IsMirrored(from)) {
      // One wire message per remote mirror machine; the mirrors fan out
      // locally. Every neighbour still receives (and buffers/processes) a
      // logical message, but only the mirror hops cross the network and
      // only they occupy the sender's wire statistics. Each staged cross
      // message carries a cross weight — 1.0 on the first touch of its
      // machine within this broadcast, else 0.0 — so the merge can fold
      // the destination's cross-in traffic from the arenas in emission
      // order without re-deriving broadcast boundaries.
      const double mult = multiplicity_per_neighbor;
      const double remote = plan->RemoteMirrorMachines(from);
      cur_->wire_cross += remote;
      cur_->logical_cross += remote;
      cur_->wire_sent += remote;
      std::vector<uint8_t>& seen = mirror_seen_;
      seen.assign(num_machines_, 0);
      std::span<const VertexId> neighbors = graph.Neighbors(from);
      for (VertexId u : neighbors) {
        const uint32_t machine = machine_of_[u];
        arenas_[machine].PushBack(u, tag, value, mult);
        if (machine != machine_) {
          cross_weights_[machine].push_back(seen[machine] ? 0.0 : 1.0);
          seen[machine] = 1;
        }
        cur_->logical_sent += mult;
      }
      AddComputeUnits(static_cast<double>(neighbors.size()));
      return;
    }
    // No mirror: broadcast degenerates to per-neighbour sends.
    for (VertexId u : graph.Neighbors(from)) {
      SendInternal(u, tag, value, multiplicity_per_neighbor);
    }
  }

  void AddComputeUnits(double units) override {
    cur_->compute_units += units;
  }

  void Aggregate(double value) override {
    cur_->aggregate += value;
    cur_->aggregate_used = true;
  }

  void AddResidualBytes(double bytes) override {
    cur_->residual_bytes += bytes;
  }

  uint64_t round() const override { return round_; }
  Rng& rng() override { return rng_; }

  const MessageBlock& arena(uint32_t dest) const { return arenas_[dest]; }
  const std::vector<double>& cross_weights(uint32_t dest) const {
    return cross_weights_[dest];
  }
  const std::vector<VertexLog>& log() const { return log_; }

 private:
  void SendInternal(VertexId target, uint32_t tag, double value,
                    double multiplicity) {
    const uint32_t target_machine = machine_of_[target];
    arenas_[target_machine].PushBack(target, tag, value, multiplicity);
    cur_->logical_sent += multiplicity;
    cur_->wire_sent += multiplicity;
    if (target_machine != machine_) {
      cur_->logical_cross += multiplicity;
      cur_->wire_cross += multiplicity;
      if (mirror_broadcast_only_) {
        // Mirror profiles mix first-touch hops (weight 1/0) with plain
        // sends from unmirrored vertices (weight = multiplicity); the
        // weight column keeps the merge's cross-in fold uniform.
        cross_weights_[target_machine].push_back(multiplicity);
      }
    }
  }

  const SyncEngine* engine_ = nullptr;  // Rebound by Configure each Run.
  uint32_t machine_ = 0;
  uint32_t num_machines_ = 0;
  uint64_t query_ = 0;
  const uint32_t* machine_of_ = nullptr;
  bool mirror_broadcast_only_ = false;
  uint64_t round_ = 0;
  Rng rng_{0};
  VertexLog* cur_ = nullptr;
  std::vector<MessageBlock> arenas_;          // One per destination.
  std::vector<std::vector<double>> cross_weights_;  // Mirror mode only.
  std::vector<VertexLog> log_;
  std::vector<uint8_t> mirror_seen_;
};

/// The reusable per-query buffers Run hangs off the caller's
/// QueryContext: per-machine workers and per-(machine, shard) sinks.
/// They used to be engine members; moving them here is what makes Run
/// const and the engine shareable across concurrent queries, while one
/// query still reuses its capacity across batches exactly as before.
struct SyncEngine::RunScratch : QueryContext::Scratch {
  std::vector<Worker> workers;
  std::vector<std::unique_ptr<ShardSink>> shard_sinks;
};

SyncEngine::~SyncEngine() = default;  // ShardSink is complete here.

EngineOptions SyncEngine::NormalizeOptions(EngineOptions options) {
  if (options.ooc.enabled && options.profile.out_of_core &&
      options.ooc.memory_budget_bytes > 0) {
    // The real runtime only grants messages their governor share of the
    // budget; pointing the cost model's resident allowance at the same
    // share keeps modeled and measured spilling comparable.
    options.profile.ooc_budget_bytes =
        MemoryGovernor::MessageShareBytes(options.ooc.memory_budget_bytes);
  }
  return options;
}

SyncEngine::SyncEngine(const Graph& graph, const Partitioning& partition,
                       EngineOptions options)
    : graph_(graph),
      partition_(partition),
      options_(NormalizeOptions(std::move(options))),
      cost_model_(options_.cluster, options_.profile, options_.cost) {
  if (options_.profile.mirroring) {
    mirror_plan_ = std::make_unique<MirrorPlan>(
        graph_, partition_, options_.profile.mirror_degree_threshold);
  }
  ComputeGraphShares();
}

void SyncEngine::ComputeGraphShares() {
  uint32_t machines = partition_.num_machines;
  graph_share_bytes_.assign(machines, 0.0);
  edge_stream_bytes_.assign(machines, 0.0);
  vertices_by_machine_.assign(machines, {});
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    uint32_t machine = partition_.MachineOf(v);
    vertices_by_machine_[machine].push_back(v);
    // CSR share: one offset entry + degree target entries.
    graph_share_bytes_[machine] +=
        sizeof(EdgeIndex) + graph_.OutDegree(v) * sizeof(VertexId);
    // Out-of-core edge stream: 8-byte (src, dst) records per round.
    edge_stream_bytes_[machine] += graph_.OutDegree(v) * 8.0;
  }
  if (mirror_plan_ != nullptr) {
    for (uint32_t m = 0; m < machines; ++m) {
      graph_share_bytes_[m] += mirror_plan_->MirrorStateBytesPerMachine();
    }
  }
}

Result<EngineResult> SyncEngine::Run(VertexProgram& program) const {
  QueryContext ctx;  // Query 0, private pool: the historical behavior.
  return Run(program, ctx);
}

Result<EngineResult> SyncEngine::Run(VertexProgram& program,
                                     QueryContext& ctx) const {
  // Fault-tolerance bookkeeping: simulated time elapsed since the last
  // checkpoint, i.e. the replay cost of a failure now.
  double seconds_since_checkpoint = 0.0;
  const uint32_t machines = partition_.num_machines;
  if (machines != options_.cluster.num_machines) {
    return Status::InvalidArgument(
        "partition machine count does not match cluster spec");
  }
  if (partition_.assignment.size() != graph_.NumVertices()) {
    return Status::InvalidArgument("partition does not cover the graph");
  }

  // Real out-of-core runtime: fresh per Run (spill files and caches are
  // round-lifecycle state), validated against the infeasible floor.
  std::unique_ptr<OocRuntime> ooc_runtime;
  if (options_.ooc.enabled) {
    if (!options_.profile.out_of_core) {
      return Status::InvalidArgument(
          "real out-of-core execution (ooc.enabled) requires an "
          "out-of-core system profile such as GraphD");
    }
    OocRuntime::Setup setup;
    setup.options = options_.ooc;
    setup.machines = machines;
    setup.stat_scale = options_.stat_scale;
    setup.bytes_per_message = options_.profile.bytes_per_message;
    setup.message_memory_overhead =
        options_.profile.message_memory_overhead;
    VCMP_ASSIGN_OR_RETURN(
        ooc_runtime,
        OocRuntime::Create(setup, graph_, vertices_by_machine_));
  }
  OocRuntime* const rt = ooc_runtime.get();

  // Reusable buffers live in the query context, not the engine, so
  // concurrent queries sharing this engine never alias them. Workers
  // persist across a query's Run calls; Reset retains their capacity so
  // repeated runs (trainer probes, batch loops) allocate nothing new.
  if (dynamic_cast<RunScratch*>(ctx.sync_scratch.get()) == nullptr) {
    ctx.sync_scratch = std::make_unique<RunScratch>();
  }
  RunScratch& scratch = static_cast<RunScratch&>(*ctx.sync_scratch);
  scratch.workers.resize(machines);
  std::vector<Worker>& workers = scratch.workers;
  const bool collect_times = options_.collect_phase_times;
  const Combiner* combiner =
      options_.profile.combines_messages ? program.combiner() : nullptr;
  for (Worker& worker : workers) {
    worker.Reset(machines);
    worker.set_collect_timing(collect_times);
    worker.SetCombiner(combiner);
    worker.set_vertex_space(graph_.NumVertices());
  }

  // One sink per (machine, shard): raw staging arenas and per-vertex log
  // records, merged after the compute barrier in fixed shard order.
  const uint32_t shards_per_machine =
      options_.compute_shards_per_machine == 0
          ? kDefaultShardsPerMachine
          : options_.compute_shards_per_machine;
  const uint32_t num_shard_tasks = machines * shards_per_machine;
  scratch.shard_sinks.resize(num_shard_tasks);
  std::vector<std::unique_ptr<ShardSink>>& shard_sinks =
      scratch.shard_sinks;
  for (uint32_t task = 0; task < num_shard_tasks; ++task) {
    if (shard_sinks[task] == nullptr) {
      shard_sinks[task] = std::make_unique<ShardSink>();
    }
    shard_sinks[task]->Configure(this, task / shards_per_machine, machines,
                                 ctx.query_id);
  }

  // The pool outlives the round loop. A context without a pool gets a
  // private one: its threads are created once per Run and parked between
  // parallel sections, instead of spawning and joining a thread set
  // every round. A context WITH a pool (concurrent queries) fans out on
  // the shared workers; per-call completion latches keep the queries'
  // parallel sections independent. Intra-machine sharding means more
  // threads than machines still helps, so the only cap is the optional
  // hardware clamp (oversubscription adds context switches without
  // changing any output — results are thread-count invariant).
  std::unique_ptr<ThreadPool> owned_pool;
  if (ctx.pool == nullptr) {
    const uint32_t thread_count = ThreadPool::ResolveThreads(
        options_.execution_threads, options_.clamp_threads_to_hardware);
    owned_pool = std::make_unique<ThreadPool>(thread_count - 1);
  }
  ThreadPool& pool = ctx.pool != nullptr ? *ctx.pool : *owned_pool;
  const bool steal = options_.enable_work_stealing;
  auto parallel_shards = [&pool, steal](
                             uint32_t count,
                             const std::function<void(uint32_t)>& fn) {
    if (steal) {
      pool.ParallelForStealable(count, fn);
    } else {
      pool.ParallelFor(count, fn);
    }
  };

  EngineResult result;
  const double scale = options_.stat_scale;
  const double cutoff = options_.cost.overload_cutoff_seconds;

  // Round-loop scratch, reused every round.
  std::vector<ShardPlan> plans(machines);
  std::vector<MergeSlot> merge_slots(
      static_cast<size_t>(machines) * machines);
  std::vector<double> machine_units(machines, 0.0);
  std::vector<double> machine_aggregate(machines, 0.0);
  std::vector<uint8_t> machine_aggregate_used(machines, 0);
  std::vector<double> machine_residual_round(machines, 0.0);
  std::vector<double> residual_ledger(machines, 0.0);
  std::vector<double> shard_weights;  // trace_shard_spans only.
  // Real OOC seeding superstep: per-machine degree columns streamed from
  // the vertex-state files (shard planning without touching the CSR).
  std::vector<std::vector<uint32_t>> ooc_degrees(rt != nullptr ? machines
                                                               : 0);

  // Tracing rides the simulated clock: this run sits on the caller's
  // timeline at trace_time_offset_seconds (the runner lines batches up
  // by passing a cumulative offset). All trace content derives from
  // round statistics that are bit-identical across thread counts, so
  // the trace is too.
  Tracer* const tracer = options_.tracer;
  uint32_t trace_track = options_.trace_track;
  if (tracer != nullptr && trace_track == EngineOptions::kAutoTrack) {
    trace_track = tracer->AddTrack("engine", "rounds");
  }

  for (uint64_t round = 0; round <= options_.max_rounds; ++round) {
    if (rt != nullptr && round > 0) {
      // Happens-before edge for the background prefetch jobs launched at
      // the end of last round: after this barrier their staged sections
      // are plain data, consumed lazily (and deterministically) inside
      // TouchSections. The wait is scoped to THIS query's jobs so
      // queries sharing the pool do not couple at each other's barriers.
      rt->WaitPrefetch();
      VCMP_RETURN_IF_ERROR(rt->ConsumeError());
    }
    for (Worker& worker : workers) worker.send_stats().Clear();

    ClusterRoundLoad loads(machines);

    bool any_messages_pending = false;
    const bool use_runs = program.UsesComputeRun();
    const uint64_t compute_start_ns = wallclock::NowNs();

    // --- Phase A: per-machine prep (group, receive fold, shard plan) ---
    // Grouping and the inbox receive fold are serial per machine — the
    // same FP add order at every thread and shard count — and machines
    // are independent.
    auto prep_machine = [&](uint32_t machine) {
      Worker& worker = workers[machine];
      ShardPlan& plan = plans[machine];
      if (round == 0) {
        // Seeding superstep: every local vertex runs with an empty inbox;
        // shards balance by out-degree (broadcast seeds scan adjacency).
        // Under real OOC the degrees come off the state file, streamed
        // through the cache so the first round pays real vertex-state
        // I/O like GraphD's load phase would.
        if (rt != nullptr) {
          rt->StreamAllDegrees(machine, &ooc_degrees[machine]);
          plan.BuildForDegrees(ooc_degrees[machine], shards_per_machine);
          return;
        }
        plan.BuildForVertices(graph_, vertices_by_machine_[machine],
                              shards_per_machine);
        return;
      }
      if (rt != nullptr) {
        // Stream last round's spilled overflow back in before grouping;
        // restored messages append after the resident ones, and grouping
        // sorts the union, so the grouped inbox is bit-identical to the
        // uncapped run's.
        rt->RestoreInbox(machine, &worker.inbox());
      }
      worker.GroupInbox();
      MachineRoundLoad& load = loads[machine];
      const double* mults = worker.grouped_multiplicities();
      const size_t inbox_size = worker.inbox().size();
      for (size_t i = 0; i < inbox_size; ++i) {
        load.recv_messages += mults[i];
        // Wire units: what was actually serialized/deserialized.
        load.processed_messages +=
            options_.profile.combines_messages ? 1.0 : mults[i];
      }
      if (!use_runs) {
        // Built once here, read concurrently by this machine's shards.
        worker.MaterializedInbox();
      }
      if (rt != nullptr) {
        // Page in the vertex-state sections behind this round's targets
        // (ascending section order; prefetched buffers are consumed at
        // exactly the point a synchronous load would install them).
        rt->TouchSections(machine, worker.runs());
      }
      plan.BuildForRuns(worker.runs(), shards_per_machine);
    };
    pool.ParallelFor(machines, prep_machine);
    if (rt != nullptr) VCMP_RETURN_IF_ERROR(rt->ConsumeError());

    // --- Phase B: sharded compute kernels ---
    // runs() is the round's sparse frontier: only vertices with messages
    // appear, in ascending (target, tag) order. Each shard executes its
    // contiguous vertex range into its own arenas/logs; work stealing
    // only changes which thread runs a shard, never what the shard
    // writes.
    auto run_shard = [&](uint32_t task) {
      const uint32_t machine = task / shards_per_machine;
      const uint32_t shard = task % shards_per_machine;
      ShardSink& sink = *shard_sinks[task];
      sink.BeginRound(round);
      const ShardPlan& plan = plans[machine];
      const uint32_t begin = plan.bounds[shard];
      const uint32_t end = plan.bounds[shard + 1];
      if (round == 0) {
        const std::vector<VertexId>& vertices =
            vertices_by_machine_[machine];
        for (uint32_t i = begin; i < end; ++i) {
          sink.BeginVertex(vertices[i]);
          program.Compute(vertices[i], {}, sink);
        }
        return;
      }
      Worker& worker = workers[machine];
      const std::span<const MessageRun> runs = worker.runs();
      const double* values = worker.grouped_values();
      const double* mults = worker.grouped_multiplicities();
      if (use_runs) {
        // Devirtualized batch path: one ComputeRun per (vertex, tag)
        // run, payload handed over as contiguous columns. Same call
        // order a per-vertex Compute would fold the tag groups in.
        VertexId prev_target = 0;
        bool have_prev = false;
        for (uint32_t r = begin; r < end; ++r) {
          const MessageRun& run = runs[r];
          if (!have_prev || run.target != prev_target) {
            sink.BeginVertex(run.target);
            prev_target = run.target;
            have_prev = true;
          }
          MessageRunView view{run.tag, values + run.begin,
                              mults + run.begin, run.size()};
          program.ComputeRun(run.target, view, sink);
        }
      } else {
        // Fallback: the AoS view was materialized in phase A; hand each
        // vertex the multi-tag span the legacy Compute signature expects.
        const std::span<const Message> inbox = worker.MaterializedInbox();
        uint32_t r = begin;
        while (r < end) {
          uint32_t r_end = r + 1;
          while (r_end < end && runs[r_end].target == runs[r].target) {
            ++r_end;
          }
          const size_t first = runs[r].begin;
          const size_t last = runs[r_end - 1].end;
          sink.BeginVertex(runs[r].target);
          program.Compute(runs[r].target,
                          inbox.subspan(first, last - first), sink);
          r = r_end;
        }
      }
    };
    parallel_shards(num_shard_tasks, run_shard);

    // --- Phase C: canonical merge into worker outboxes ---
    // One task per (sender, destination) pair walks the sender's shard
    // arenas for that destination in ascending shard order — exactly the
    // sender's serial emission order — so combining folds, outbox bytes
    // and the destination's cross-in traffic are all independent of the
    // shard count.
    auto merge_pair = [&](uint32_t pair) {
      const uint32_t sender = pair / machines;
      const uint32_t dest = pair % machines;
      const uint64_t t0 = collect_times ? wallclock::NowNs() : 0;
      Worker& worker = workers[sender];
      MergeSlot& slot = merge_slots[pair];
      slot.Clear();
      MessageBlock& outbox = worker.outbox(dest);
      const uint32_t first_task = sender * shards_per_machine;
      double logical_in = 0.0;
      if (combiner != nullptr) {
        // Per-message fold through the sender's combining index, counting
        // created keys (integer wire units).
        CombineIndex& index = worker.combine_index(dest);
        const CombinerKind kind = worker.combiner_kind();
        double new_keys = 0.0;
        double wire_in = 0.0;
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          const MessageBlock& arena =
              shard_sinks[first_task + shard]->arena(dest);
          const VertexId* targets = arena.targets();
          const uint32_t* tags = arena.tags();
          const double* values = arena.values();
          const double* mults = arena.multiplicities();
          const size_t n = arena.size();
          for (size_t i = 0; i < n; ++i) {
            bool inserted = false;
            const uint64_t key =
                (static_cast<uint64_t>(targets[i]) << 32) | tags[i];
            const size_t position =
                index.FindOrInsert(key, outbox.size(), &inserted);
            if (inserted) {
              outbox.PushBack(targets[i], tags[i], values[i], mults[i]);
              new_keys += 1.0;
              if (dest != sender) wire_in += 1.0;
            } else {
              switch (kind) {
                case CombinerKind::kSum:
                  outbox.values()[position] += values[i];
                  outbox.multiplicities()[position] += mults[i];
                  break;
                case CombinerKind::kMin:
                  if (values[i] < outbox.values()[position]) {
                    outbox.values()[position] = values[i];
                  }
                  outbox.multiplicities()[position] += mults[i];
                  break;
                case CombinerKind::kCustom: {
                  Message into = outbox.At(position);
                  combiner->Merge(into, Message{targets[i], tags[i],
                                                values[i], mults[i]});
                  outbox.Set(position, into);
                  break;
                }
              }
            }
            if (dest != sender) logical_in += mults[i];
          }
        }
        slot.new_wire_keys = new_keys;
        slot.wire_cross_in = wire_in;
      } else if (mirror_plan_ != nullptr) {
        // Mirror mode: bulk append; cross-in folds the per-message
        // weights (1/0 for mirror first-touches, multiplicity for plain
        // sends from unmirrored vertices) in emission order.
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          const ShardSink& sink = *shard_sinks[first_task + shard];
          outbox.Append(sink.arena(dest));
          if (dest != sender) {
            for (double weight : sink.cross_weights(dest)) {
              logical_in += weight;
            }
          }
        }
        slot.wire_cross_in = logical_in;
      } else {
        // Plain mode: bulk column appends; wire == logical traffic.
        size_t total = 0;
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          total += shard_sinks[first_task + shard]->arena(dest).size();
        }
        outbox.Reserve(outbox.size() + total);
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          const MessageBlock& arena =
              shard_sinks[first_task + shard]->arena(dest);
          outbox.Append(arena);
          if (dest != sender) {
            const double* mults = arena.multiplicities();
            const size_t n = arena.size();
            for (size_t i = 0; i < n; ++i) logical_in += mults[i];
          }
        }
        slot.wire_cross_in = logical_in;
      }
      slot.logical_cross_in = logical_in;
      if (collect_times) slot.merge_ns = wallclock::NowNs() - t0;
    };
    parallel_shards(machines * machines, merge_pair);

    // --- Phase D: fold per-vertex logs in vertex order ---
    // Shard s holds a contiguous vertex range, so concatenating the
    // machine's shard logs in shard order IS its vertex order: the fold
    // below performs the same FP add sequence at every shard count.
    auto finalize_machine = [&](uint32_t machine) {
      double units = 0.0;
      double aggregate = 0.0;
      bool aggregate_used = false;
      double residual = 0.0;
      double active = 0.0;
      double logical_sent = 0.0;
      double logical_cross = 0.0;
      double wire_sent = 0.0;
      double wire_cross = 0.0;
      const uint32_t first_task = machine * shards_per_machine;
      for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
        for (const ShardSink::VertexLog& rec :
             shard_sinks[first_task + shard]->log()) {
          units += rec.compute_units;
          aggregate += rec.aggregate;
          aggregate_used = aggregate_used || rec.aggregate_used;
          residual += rec.residual_bytes;
          logical_sent += rec.logical_sent;
          logical_cross += rec.logical_cross;
          wire_sent += rec.wire_sent;
          wire_cross += rec.wire_cross;
          active += 1.0;
        }
      }
      if (combiner != nullptr) {
        // Wire units under combining are the distinct keys the merge
        // created — integers, summed over destinations in fixed order.
        wire_sent = 0.0;
        wire_cross = 0.0;
        for (uint32_t dest = 0; dest < machines; ++dest) {
          const MergeSlot& slot = merge_slots[machine * machines + dest];
          wire_sent += slot.new_wire_keys;
          if (dest != machine) wire_cross += slot.new_wire_keys;
        }
      }
      WorkerSendStats& stats = workers[machine].send_stats();
      stats.logical_sent = logical_sent;
      stats.wire_sent = wire_sent;
      stats.wire_cross = wire_cross;
      stats.logical_cross = logical_cross;
      MachineRoundLoad& load = loads[machine];
      load.active_vertices = active;
      machine_units[machine] = units;
      machine_aggregate[machine] = aggregate;
      machine_aggregate_used[machine] = aggregate_used ? 1 : 0;
      machine_residual_round[machine] = residual;
    };
    pool.ParallelFor(machines, finalize_machine);
    if (collect_times) {
      result.phase.compute_seconds +=
          wallclock::SecondsSince(compute_start_ns);
      uint64_t merge_ns = 0;
      for (const MergeSlot& slot : merge_slots) merge_ns += slot.merge_ns;
      result.phase.stage_seconds += merge_ns * 1e-9;
    }
    double active_vertices_total = 0.0;
    for (const MachineRoundLoad& load : loads) {
      active_vertices_total += load.active_vertices;
    }

    // --- Assemble loads and price the round ---
    const double bytes_per_message = options_.profile.bytes_per_message;
    double round_extra_barriers = 0.0;
    for (uint32_t machine = 0; machine < machines; ++machine) {
      MachineRoundLoad& load = loads[machine];
      const WorkerSendStats& send = workers[machine].send_stats();
      load.cross_bytes_out = send.wire_cross * bytes_per_message * scale;
      double wire_cross_in = 0.0;
      for (uint32_t sender = 0; sender < machines; ++sender) {
        wire_cross_in +=
            merge_slots[sender * machines + machine].wire_cross_in;
      }
      load.cross_bytes_in = wire_cross_in * bytes_per_message * scale;
      double recv_wire_units = options_.profile.combines_messages
                                   ? load.processed_messages
                                   : load.recv_messages;
      // A machine's message work is the larger of its receive and send
      // sides (serialization costs the sender as much as deserialization
      // costs the receiver); this prices seed supersteps, whose traffic
      // is all outbound. Sender-side combining does NOT reduce the work:
      // every logical message still passes through the combiner (it only
      // shrinks wire bytes and buffers).
      load.processed_messages =
          std::max(load.recv_messages, send.logical_sent);
      if (options_.profile.combines_messages) {
        // Merged messages skip serialization/allocation; only the fold
        // remains.
        load.processed_messages *= options_.profile.combined_work_fraction;
      }
      // Receive buffers drain into compute while send buffers stream out:
      // the resident peak is the larger direction, not their sum.
      load.buffered_message_bytes =
          std::max(recv_wire_units, send.wire_sent) * bytes_per_message *
          scale;
      // Superstep splitting (Facebook Giraph): a message-heavy round is
      // chopped into sub-steps, capping the resident buffer at the
      // threshold; every extra sub-step costs one more barrier.
      double split_threshold =
          options_.profile.superstep_split_threshold_bytes;
      if (split_threshold > 0.0 &&
          load.buffered_message_bytes > split_threshold) {
        double sub_steps =
            std::ceil(load.buffered_message_bytes / split_threshold);
        round_extra_barriers =
            std::max(round_extra_barriers, sub_steps - 1.0);
        load.buffered_message_bytes = split_threshold;
      }
      load.sent_messages = send.logical_sent * scale;
      load.recv_messages *= scale;
      load.processed_messages *= scale;
      load.active_vertices *= scale;
      load.compute_units = machine_units[machine] * scale;
      load.state_bytes =
          (graph_share_bytes_[machine] + program.StateBytes(machine)) *
          scale;
      // Residual memory: the carryover from earlier batches, whatever the
      // program still reports itself, and the engine's ledger of
      // AddResidualBytes calls accumulated over this run's rounds.
      residual_ledger[machine] += machine_residual_round[machine];
      double carryover = options_.carryover_residual_bytes.empty()
                             ? 0.0
                             : options_.carryover_residual_bytes[machine];
      load.residual_bytes = (carryover + program.ResidualBytes(machine) +
                             residual_ledger[machine]) *
                            scale;
      if (rt != nullptr) {
        // Measured spill: what the stream actually restored this round,
        // expressed in the same paper-scale buffered-byte terms the
        // modeled recv-side overflow uses.
        load.measured_spill_bytes =
            static_cast<double>(rt->TakeRestoredMessages(machine)) *
            bytes_per_message * options_.profile.message_memory_overhead *
            scale;
        // Measured vertex-state streaming replaces the page-cache
        // heuristic below.
        load.measured_edge_stream_bytes =
            rt->TakeRoundStreamBytes(machine) * scale;
        size_t live_messages = workers[machine].inbox().size();
        for (uint32_t dest = 0; dest < machines; ++dest) {
          live_messages += workers[machine].OutboxSize(dest);
        }
        rt->NoteRoundLiveBytes(machine,
                               static_cast<double>(live_messages) *
                                   MessageBlock::kBytesPerMessage);
      }
    }

    double edge_stream_per_machine = 0.0;
    if (options_.profile.out_of_core && rt == nullptr) {
      for (double bytes : edge_stream_bytes_) {
        edge_stream_per_machine = std::max(edge_stream_per_machine, bytes);
      }
      // Edge partitions far smaller than memory live in the OS page cache
      // after the first round; only partitions that genuinely cannot stay
      // cached keep hitting the disk every round.
      if (edge_stream_per_machine * scale <
          0.25 * options_.cluster.machine.usable_memory_bytes) {
        edge_stream_per_machine = 0.0;
      }
      // The semi-streaming engine only streams adjacency lists that are
      // actually scanned this round; tasks report scans as compute units
      // (one per edge).
      double scanned_units = 0.0;
      for (uint32_t machine = 0; machine < machines; ++machine) {
        scanned_units += machine_units[machine];
      }
      double scanned_fraction =
          scanned_units > 0.0
              ? std::min(1.0, scanned_units /
                                  std::max<double>(graph_.NumEdges(), 1.0))
              : std::min(1.0, active_vertices_total /
                                  std::max<double>(graph_.NumVertices(), 1.0));
      edge_stream_per_machine *= scale * scanned_fraction;
    }
    RoundStats stats =
        cost_model_.EvaluateRound(loads, edge_stream_per_machine);
    stats.round = round;
    if (round_extra_barriers > 0.0) {
      double extra = round_extra_barriers * stats.barrier_seconds;
      stats.barrier_seconds += extra;
      stats.total_seconds += extra;
    }

    // --- Fault tolerance: checkpoints and injected failures ---
    double round_checkpoint_seconds = 0.0;
    double round_recovery_seconds = 0.0;
    if (options_.checkpoint_interval_rounds > 0 && round > 0 &&
        round % options_.checkpoint_interval_rounds == 0) {
      // Synchronous checkpoint: every machine flushes its resident data.
      double checkpoint_time = stats.max_memory_bytes /
                               options_.cluster.machine.disk_bandwidth;
      stats.total_seconds += checkpoint_time;
      result.checkpoint_seconds += checkpoint_time;
      round_checkpoint_seconds = checkpoint_time;
      ++result.checkpoints_taken;
      seconds_since_checkpoint = 0.0;
    }
    if (round == options_.inject_failure_at_round &&
        !result.failure_recovered) {
      // A machine dies: reload the last checkpoint (or restart) and
      // replay every round since. The replay re-executes the same
      // deterministic rounds, so its cost is the elapsed time since the
      // checkpoint plus the reload itself.
      double reload_time =
          options_.checkpoint_interval_rounds > 0
              ? stats.max_memory_bytes /
                    options_.cluster.machine.disk_bandwidth
              : 0.0;
      double replay_time = options_.checkpoint_interval_rounds > 0
                               ? seconds_since_checkpoint
                               : result.seconds;
      result.recovery_seconds = reload_time + replay_time;
      stats.total_seconds += result.recovery_seconds;
      round_recovery_seconds = result.recovery_seconds;
      result.failure_recovered = true;
    }
    seconds_since_checkpoint += stats.total_seconds;

    if (tracer != nullptr) {
      // The round partitions: the machines work (compute with
      // network/disk stalls overlapped), then the barrier, then any
      // checkpoint flush and failure recovery. Round boundaries are
      // anchored to the same running sum result.seconds uses, so round
      // starts are monotone by FP-addition monotonicity; the child
      // chain is clamped into [t0, t_end] so nesting survives the last
      // ulp of rounding. Per-phase maxima that do not form a timeline
      // (they come from different machines) travel as span args.
      const double t0 = options_.trace_time_offset_seconds + result.seconds;
      const double t_end = options_.trace_time_offset_seconds +
                           (result.seconds + stats.total_seconds);
      const double work = stats.total_seconds - stats.barrier_seconds -
                          round_checkpoint_seconds -
                          round_recovery_seconds;
      tracer->Begin(trace_track, "round", t0,
                    {{"round", static_cast<double>(round)},
                     {"messages", stats.messages},
                     {"message_bytes", stats.message_bytes},
                     {"cross_machine_bytes", stats.cross_machine_bytes},
                     {"active_vertices", stats.active_vertices}});
      double t = t0;
      auto child = [&](const char* name, double duration,
                       std::vector<TraceArg> args = {}) {
        tracer->Begin(trace_track, name, t, std::move(args));
        t = std::min(t + duration, t_end);
        tracer->End(trace_track, t);
      };
      // The compute child optionally nests one span per (machine, shard),
      // sized by the shard's staged messages — the same integer weights
      // at every thread count, so the subdivision is deterministic too.
      tracer->Begin(trace_track, "compute", t,
                    {{"max_compute_seconds", stats.compute_seconds},
                     {"network_stall_seconds", stats.network_seconds},
                     {"disk_stall_seconds", stats.disk_stall_seconds},
                     {"thrash_multiplier", stats.thrash_multiplier}});
      {
        const double compute_end = std::min(t + work, t_end);
        if (options_.trace_shard_spans) {
          shard_weights.assign(num_shard_tasks, 0.0);
          for (uint32_t task = 0; task < num_shard_tasks; ++task) {
            double staged = 0.0;
            for (uint32_t dest = 0; dest < machines; ++dest) {
              staged +=
                  static_cast<double>(shard_sinks[task]->arena(dest).size());
            }
            shard_weights[task] = staged;
          }
          obs::EmitShardSpans(*tracer, trace_track, t, compute_end - t,
                              shards_per_machine, shard_weights);
        }
        t = compute_end;
      }
      tracer->End(trace_track, t);
      child("barrier", stats.barrier_seconds);
      if (round_checkpoint_seconds > 0.0) {
        child("checkpoint", round_checkpoint_seconds);
      }
      if (round_recovery_seconds > 0.0) {
        child("recovery", round_recovery_seconds);
      }
      if (rt != nullptr && stats.spilled_bytes > 0.0) {
        // Real OOC only (non-OOC traces stay byte-identical): a marker
        // span inside the round carrying the measured spill traffic.
        // Its I/O time is already part of the compute child's disk
        // stalls, so the marker adds no duration of its own.
        child("ooc_spill", 0.0, {{"spilled_bytes", stats.spilled_bytes}});
      }
      tracer->End(trace_track, t_end);
      tracer->Gauge(trace_track, "memory_bytes", t_end,
                    stats.max_memory_bytes);
      tracer->Gauge(trace_track, "residual_bytes", t_end,
                    stats.max_residual_bytes);
      if (rt != nullptr) {
        tracer->Gauge(trace_track, "ooc_spilled_bytes", t_end,
                      stats.spilled_bytes);
      }
    }

    result.seconds += stats.total_seconds;
    result.total_messages += stats.messages;
    result.peak_memory_bytes =
        std::max(result.peak_memory_bytes, stats.max_memory_bytes);
    result.peak_residual_bytes =
        std::max(result.peak_residual_bytes, stats.max_residual_bytes);
    result.peak_buffered_bytes =
        std::max(result.peak_buffered_bytes, stats.max_buffered_bytes);
    result.network_overuse_seconds += stats.network_overuse_seconds;
    result.disk_overuse_seconds += stats.disk_overuse_seconds;
    result.disk_utilization += stats.disk_io_seconds;  // Normalised below.
    result.disk_saturated = result.disk_saturated || stats.disk_saturated;
    result.max_io_queue_length =
        std::max(result.max_io_queue_length, stats.io_queue_length);
    result.spilled_bytes += stats.spilled_bytes;
    result.rounds.push_back(stats);
    result.num_rounds = round + 1;

    if (stats.overflow || result.seconds > cutoff) {
      result.overloaded = true;
      if (options_.stop_early_on_overload) break;
    }

    // --- Deliver: drain all outboxes into next-round inboxes ---
    // Parallel by destination: shard d touches only the senders' outboxes
    // for machine d and machine d's inbox, and appends them in fixed
    // sender order — byte-identical to the serial sender-major drain.
    // A destination fed by exactly one sender (every single-machine
    // cluster, and any quiet destination) swaps buffers instead of
    // copying; multi-sender destinations reserve the exact total before
    // the column appends.
    const uint64_t deliver_start_ns = wallclock::NowNs();
    pool.ParallelFor(machines, [&workers, machines, rt](uint32_t dest) {
      MessageBlock& inbox = workers[dest].inbox();
      inbox.Clear();
      uint32_t nonempty_senders = 0;
      uint32_t solo_sender = 0;
      size_t total = 0;
      for (uint32_t sender = 0; sender < machines; ++sender) {
        const size_t outbox_size = workers[sender].OutboxSize(dest);
        if (outbox_size != 0) {
          ++nonempty_senders;
          solo_sender = sender;
          total += outbox_size;
        }
      }
      const size_t cap = rt != nullptr
                             ? static_cast<size_t>(rt->resident_message_cap())
                             : ~size_t{0};
      if (total > cap) {
        // Hard budget: keep the prefix of the sender-major concatenation
        // resident and page the suffix to the spill file. Exactly one
        // sender straddles the cut, so resident ++ restored reproduces
        // the uncapped inbox order byte for byte (and GroupInbox's
        // stable sort then folds identical payload orders).
        inbox.Reserve(cap);
        size_t kept = 0;
        for (uint32_t sender = 0; sender < machines; ++sender) {
          MessageBlock& outbox = workers[sender].outbox(dest);
          const size_t n = outbox.size();
          if (n == 0) continue;
          const size_t take = std::min(n, cap - kept);
          if (take > 0) {
            inbox.AppendColumns(outbox.targets(), outbox.tags(),
                                outbox.values(), outbox.multiplicities(),
                                take);
            kept += take;
          }
          if (take < n) {
            rt->SpillMessages(dest, outbox, take, n - take);
          }
          outbox.Clear();
          workers[sender].combine_index(dest).Clear();
        }
      } else if (nonempty_senders == 1) {
        workers[solo_sender].SwapOutbox(dest, &inbox);
      } else if (nonempty_senders > 1) {
        inbox.Reserve(total);
        for (uint32_t sender = 0; sender < machines; ++sender) {
          if (workers[sender].OutboxSize(dest) != 0) {
            workers[sender].Drain(dest, &inbox);
          }
        }
      }
      if (rt != nullptr) rt->FinishDeliverRound(dest);
    });
    if (collect_times) {
      result.phase.deliver_seconds += wallclock::SecondsSince(deliver_start_ns);
    }
    if (rt != nullptr) VCMP_RETURN_IF_ERROR(rt->ConsumeError());
    for (uint32_t machine = 0; machine < machines; ++machine) {
      if (!workers[machine].inbox().empty() ||
          (rt != nullptr && rt->has_pending_spill(machine))) {
        any_messages_pending = true;
      }
    }
    if (!any_messages_pending) break;  // Quiescence: vote-to-halt.
    if (program.ShouldTerminate(round + 1)) break;
    bool aggregate_used = false;
    double aggregate_sum = 0.0;
    for (uint32_t machine = 0; machine < machines; ++machine) {
      aggregate_used = aggregate_used || machine_aggregate_used[machine];
      aggregate_sum += machine_aggregate[machine];
    }
    if (aggregate_used && program.TerminateOnAggregate(aggregate_sum)) {
      break;
    }
    if (rt != nullptr) {
      // The loop will run another round: queue its sections (from the
      // resident inbox targets — a subset of next round's needed set)
      // and kick off one background read job per machine. The barrier
      // at the top of the next iteration publishes the staged buffers.
      for (uint32_t machine = 0; machine < machines; ++machine) {
        rt->SchedulePrefetch(machine, workers[machine].inbox());
      }
      rt->LaunchPrefetch(&pool);
    }
  }

  result.residual_bytes_per_machine = residual_ledger;

  if (rt != nullptr) {
    // Drain any prefetch jobs a terminal break left in flight before
    // reading the runtime's counters (or letting it be destroyed).
    rt->WaitPrefetch();
    VCMP_RETURN_IF_ERROR(rt->ConsumeError());
    result.ooc_active = true;
    result.ooc = rt->run_stats();
  }

  if (result.seconds > 0.0) {
    result.disk_utilization =
        std::min(1.0, result.disk_utilization / result.seconds);
  }
  if (result.overloaded) {
    result.seconds = std::max(result.seconds, cutoff);
  }
  if (collect_times) {
    for (const Worker& worker : workers) {
      result.phase.group_seconds += worker.group_ns() * 1e-9;
    }
  }
  if (tracer != nullptr) {
    // One Add per run, mirroring RunReport::Absorb's per-batch
    // accumulation so the flat counters reconcile bitwise with the
    // report totals (per-round adds would associate differently).
    tracer->Add("engine.messages", result.total_messages);
    tracer->Add("engine.rounds", static_cast<double>(result.num_rounds));
    tracer->Add("engine.seconds", result.seconds);
    tracer->Add("engine.checkpoint_seconds", result.checkpoint_seconds);
    tracer->Add("engine.checkpoints",
                static_cast<double>(result.checkpoints_taken));
    tracer->Peak("engine.peak_memory_bytes", result.peak_memory_bytes);
    tracer->Peak("engine.peak_residual_bytes",
                 result.peak_residual_bytes);
    tracer->Peak("engine.peak_buffered_bytes",
                 result.peak_buffered_bytes);
    if (mirror_plan_ != nullptr) {
      tracer->Peak("engine.mirrors",
                   static_cast<double>(mirror_plan_->TotalMirrors()));
    }
    if (result.ooc_active) {
      tracer->Add("engine.ooc.spilled_bytes", result.spilled_bytes);
      tracer->Add("engine.ooc.spill_bytes_written",
                  result.ooc.spill_bytes_written);
      tracer->Add("engine.ooc.spill_bytes_read",
                  result.ooc.spill_bytes_read);
      tracer->Add("engine.ooc.state_bytes_read",
                  result.ooc.state_bytes_read);
      tracer->Add("engine.ooc.cache_hits",
                  static_cast<double>(result.ooc.cache_hits));
      tracer->Add("engine.ooc.cache_misses",
                  static_cast<double>(result.ooc.cache_misses));
      tracer->Add("engine.ooc.prefetch_loads",
                  static_cast<double>(result.ooc.prefetch_loads));
      tracer->Peak("engine.ooc.peak_live_bytes",
                   result.ooc.peak_live_bytes);
    }
  }
  return result;
}

}  // namespace vcmp
