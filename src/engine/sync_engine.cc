#include "engine/sync_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/wall_clock.h"
#include "obs/tracer.h"

namespace vcmp {

/// Per-machine MessageSink: wired into the machine's Worker, its own
/// deterministic random stream, and sender-side statistics. One instance
/// per simulated machine makes the compute phase embarrassingly parallel
/// across machines while staying bit-identical to serial execution.
class SyncEngine::Sink : public MessageSink {
 public:
  Sink(SyncEngine* engine, std::vector<Worker>* workers, uint32_t machine,
       uint64_t seed)
      : engine_(engine),
        workers_(workers),
        machine_(machine),
        // Hot-path hoists: Send runs per logical message, so the worker,
        // the partition assignment array, and the mirroring flag are
        // resolved once here instead of via pointer chains per call.
        // The workers vector is sized before any Sink is built and never
        // reallocates during Run.
        worker_(&(*workers)[machine]),
        machine_of_(engine->partition_.assignment.data()),
        mirror_broadcast_only_(engine->options_.profile.mirroring),
        rng_(seed) {
    logical_cross_in_.assign(engine_->partition_.num_machines, 0.0);
    wire_cross_in_.assign(engine_->partition_.num_machines, 0.0);
  }

  void BeginRound(uint64_t round) {
    round_ = round;
    std::fill(logical_cross_in_.begin(), logical_cross_in_.end(), 0.0);
    std::fill(wire_cross_in_.begin(), wire_cross_in_.end(), 0.0);
    compute_units_ = 0.0;
    aggregate_sum_ = 0.0;
    aggregate_used_ = false;
  }

  void Send(VertexId target, uint32_t tag, double value,
            double multiplicity) override {
    VCMP_CHECK(!mirror_broadcast_only_)
        << "Pregel+(mirror) only exposes the broadcast interface";
    SendInternal(target, tag, value, multiplicity);
  }

  void Broadcast(VertexId from, uint32_t tag, double value,
                 double multiplicity_per_neighbor) override {
    const Graph& graph = engine_->graph_;
    const Partitioning& partition = engine_->partition_;
    const MirrorPlan* plan = engine_->mirror_plan_.get();
    if (plan != nullptr && plan->IsMirrored(from)) {
      // One wire message per remote mirror machine; the mirrors fan out
      // locally. Every neighbour still receives (and buffers/processes) a
      // logical message, but only the mirror hops cross the network and
      // only they occupy the sender's outbox.
      const double mult = multiplicity_per_neighbor;
      WorkerSendStats& send_stats = worker_->send_stats();
      const double remote = plan->RemoteMirrorMachines(from);
      send_stats.wire_cross += remote;
      send_stats.logical_cross += remote;
      send_stats.wire_sent += remote;
      std::vector<uint8_t>& seen = mirror_seen_;
      seen.assign(partition.num_machines, 0);
      std::span<const VertexId> neighbors = graph.Neighbors(from);
      for (VertexId u : neighbors) {
        uint32_t machine = partition.MachineOf(u);
        if (machine != machine_ && !seen[machine]) {
          seen[machine] = 1;
          wire_cross_in_[machine] += 1.0;   // The mirror-hop message.
          logical_cross_in_[machine] += 1.0;
        }
        worker_->Stage(machine, u, tag, value, mult);
        send_stats.logical_sent += mult;
      }
      AddComputeUnits(static_cast<double>(neighbors.size()));
      return;
    }
    // No mirror: broadcast degenerates to per-neighbour sends.
    for (VertexId u : graph.Neighbors(from)) {
      SendInternal(u, tag, value, multiplicity_per_neighbor);
    }
  }

  void AddComputeUnits(double units) override { compute_units_ += units; }

  void Aggregate(double value) override {
    aggregate_sum_ += value;
    aggregate_used_ = true;
  }

  uint64_t round() const override { return round_; }
  Rng& rng() override { return rng_; }

  /// Mirror-hop / cross-machine traffic this sink sent INTO each machine.
  const std::vector<double>& logical_cross_in() const {
    return logical_cross_in_;
  }
  const std::vector<double>& wire_cross_in() const { return wire_cross_in_; }
  double compute_units() const { return compute_units_; }
  double aggregate_sum() const { return aggregate_sum_; }
  bool aggregate_used() const { return aggregate_used_; }

  void set_combiner(const Combiner* combiner) { combiner_ = combiner; }

 private:
  void SendInternal(VertexId target, uint32_t tag, double value,
                    double multiplicity) {
    uint32_t target_machine = machine_of_[target];
    bool new_wire =
        worker_->Stage(target_machine, target, tag, value, multiplicity);
    WorkerSendStats& stats = worker_->send_stats();
    stats.logical_sent += multiplicity;
    double wire_units = WireUnits(multiplicity, new_wire);
    stats.wire_sent += wire_units;
    if (target_machine != machine_) {
      stats.logical_cross += multiplicity;
      stats.wire_cross += wire_units;
      logical_cross_in_[target_machine] += multiplicity;
      wire_cross_in_[target_machine] += wire_units;
    }
  }

  /// Wire messages represented by one staged physical message: without
  /// sender-side combining every logical message is serialized separately;
  /// with combining, merged messages cost one wire unit.
  double WireUnits(double multiplicity, bool new_wire) const {
    if (combiner_ != nullptr) return new_wire ? 1.0 : 0.0;
    return multiplicity;
  }

  SyncEngine* engine_;
  std::vector<Worker>* workers_;
  const uint32_t machine_;
  Worker* const worker_;
  const uint32_t* const machine_of_;
  const bool mirror_broadcast_only_;
  Rng rng_;
  const Combiner* combiner_ = nullptr;
  uint64_t round_ = 0;
  double compute_units_ = 0.0;
  double aggregate_sum_ = 0.0;
  bool aggregate_used_ = false;
  std::vector<double> logical_cross_in_;
  std::vector<double> wire_cross_in_;
  std::vector<uint8_t> mirror_seen_;
};

SyncEngine::SyncEngine(const Graph& graph, const Partitioning& partition,
                       EngineOptions options)
    : graph_(graph),
      partition_(partition),
      options_(std::move(options)),
      cost_model_(options_.cluster, options_.profile, options_.cost) {
  if (options_.profile.mirroring) {
    mirror_plan_ = std::make_unique<MirrorPlan>(
        graph_, partition_, options_.profile.mirror_degree_threshold);
  }
  ComputeGraphShares();
}

void SyncEngine::ComputeGraphShares() {
  uint32_t machines = partition_.num_machines;
  graph_share_bytes_.assign(machines, 0.0);
  edge_stream_bytes_.assign(machines, 0.0);
  vertices_by_machine_.assign(machines, {});
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    uint32_t machine = partition_.MachineOf(v);
    vertices_by_machine_[machine].push_back(v);
    // CSR share: one offset entry + degree target entries.
    graph_share_bytes_[machine] +=
        sizeof(EdgeIndex) + graph_.OutDegree(v) * sizeof(VertexId);
    // Out-of-core edge stream: 8-byte (src, dst) records per round.
    edge_stream_bytes_[machine] += graph_.OutDegree(v) * 8.0;
  }
  if (mirror_plan_ != nullptr) {
    for (uint32_t m = 0; m < machines; ++m) {
      graph_share_bytes_[m] += mirror_plan_->MirrorStateBytesPerMachine();
    }
  }
}

Result<EngineResult> SyncEngine::Run(VertexProgram& program) {
  seconds_since_checkpoint_ = 0.0;
  const uint32_t machines = partition_.num_machines;
  if (machines != options_.cluster.num_machines) {
    return Status::InvalidArgument(
        "partition machine count does not match cluster spec");
  }
  if (partition_.assignment.size() != graph_.NumVertices()) {
    return Status::InvalidArgument("partition does not cover the graph");
  }

  // Workers persist across Run calls; Reset retains their capacity so
  // repeated runs (trainer probes, batch loops) allocate nothing new.
  workers_.resize(machines);
  std::vector<Worker>& workers = workers_;
  const bool collect_times = options_.collect_phase_times;
  const Combiner* combiner =
      options_.profile.combines_messages ? program.combiner() : nullptr;
  for (Worker& worker : workers) {
    worker.Reset(machines);
    worker.set_collect_timing(collect_times);
    worker.SetCombiner(combiner);
    worker.set_vertex_space(graph_.NumVertices());
  }

  // One sink per machine: independent deterministic random streams and
  // sender-side accumulators, so machines can compute concurrently with
  // results identical to serial execution.
  std::vector<std::unique_ptr<Sink>> sinks;
  sinks.reserve(machines);
  for (uint32_t machine = 0; machine < machines; ++machine) {
    sinks.push_back(std::make_unique<Sink>(
        this, &workers, machine,
        options_.seed * 0x9e3779b97f4a7c15ULL + machine));
    sinks.back()->set_combiner(options_.profile.combines_messages
                                   ? program.combiner()
                                   : nullptr);
  }

  // The pool outlives the round loop: its threads are created once per
  // Run and parked between parallel sections, instead of spawning and
  // joining a thread set every round. Oversubscribing the hardware only
  // adds context switches (results are thread-count invariant), so the
  // requested count is clamped to the core count by default; tests that
  // must run an exact shard count disable the clamp.
  uint32_t thread_count =
      options_.execution_threads == 0 ? ThreadPool::HardwareThreads()
                                      : options_.execution_threads;
  thread_count = std::min(std::max(thread_count, 1u), machines);
  if (options_.clamp_threads_to_hardware) {
    thread_count = std::min(thread_count, ThreadPool::HardwareThreads());
  }
  ThreadPool pool(thread_count - 1);

  EngineResult result;
  const double scale = options_.stat_scale;
  const double cutoff = options_.cost.overload_cutoff_seconds;

  // Tracing rides the simulated clock: this run sits on the caller's
  // timeline at trace_time_offset_seconds (the runner lines batches up
  // by passing a cumulative offset). All trace content derives from
  // round statistics that are bit-identical across thread counts, so
  // the trace is too.
  Tracer* const tracer = options_.tracer;
  uint32_t trace_track = options_.trace_track;
  if (tracer != nullptr && trace_track == EngineOptions::kAutoTrack) {
    trace_track = tracer->AddTrack("engine", "rounds");
  }

  for (uint64_t round = 0; round <= options_.max_rounds; ++round) {
    for (Worker& worker : workers) worker.send_stats().Clear();

    ClusterRoundLoad loads(machines);

    // --- Compute phase: machines are independent within a round ---
    bool any_messages_pending = false;
    const bool use_runs = program.UsesComputeRun();
    auto process_machine = [&](uint32_t machine) {
      Worker& worker = workers[machine];
      Sink& sink = *sinks[machine];
      sink.BeginRound(round);
      MachineRoundLoad& load = loads[machine];

      if (round == 0) {
        // Seeding superstep: every local vertex runs with an empty inbox.
        for (VertexId v : vertices_by_machine_[machine]) {
          program.Compute(v, {}, sink);
          load.active_vertices += 1.0;
        }
        return;
      }

      worker.GroupInbox();
      // runs() is the round's sparse frontier: only vertices with
      // messages appear, in ascending (target, tag) order — no scan of
      // the vertex space, no AoS inbox walk.
      const std::span<const MessageRun> runs = worker.runs();
      const double* values = worker.grouped_values();
      const double* mults = worker.grouped_multiplicities();
      if (use_runs) {
        // Devirtualized batch path: one ComputeRun per (vertex, tag)
        // run, payload handed over as contiguous columns. Same call
        // order a per-vertex Compute would fold the tag groups in.
        VertexId prev_target = 0;
        bool have_prev = false;
        for (const MessageRun& run : runs) {
          if (!have_prev || run.target != prev_target) {
            load.active_vertices += 1.0;
            prev_target = run.target;
            have_prev = true;
          }
          MessageRunView view{run.tag, values + run.begin,
                              mults + run.begin, run.size()};
          program.ComputeRun(run.target, view, sink);
        }
      } else {
        // Fallback: materialize an AoS view once and hand each vertex
        // the multi-tag span the legacy Compute signature expects.
        const std::span<const Message> inbox = worker.MaterializedInbox();
        size_t r = 0;
        while (r < runs.size()) {
          size_t r_end = r + 1;
          while (r_end < runs.size() &&
                 runs[r_end].target == runs[r].target) {
            ++r_end;
          }
          const size_t begin = runs[r].begin;
          const size_t end = runs[r_end - 1].end;
          program.Compute(runs[r].target, inbox.subspan(begin, end - begin),
                          sink);
          load.active_vertices += 1.0;
          r = r_end;
        }
      }
      const size_t inbox_size = worker.inbox().size();
      for (size_t i = 0; i < inbox_size; ++i) {
        load.recv_messages += mults[i];
        // Wire units: what was actually serialized/deserialized.
        load.processed_messages +=
            options_.profile.combines_messages ? 1.0 : mults[i];
      }
    };

    // Static round-robin sharding on the persistent pool: machine m goes
    // to shard m % T, exactly as the former per-round thread spawn did.
    const uint64_t compute_start_ns = wallclock::NowNs();
    pool.ParallelFor(machines, process_machine);
    if (collect_times) {
      result.phase.compute_seconds += wallclock::SecondsSince(compute_start_ns);
    }
    double active_vertices_total = 0.0;
    for (const MachineRoundLoad& load : loads) {
      active_vertices_total += load.active_vertices;
    }

    // --- Assemble loads and price the round ---
    const double bytes_per_message = options_.profile.bytes_per_message;
    double round_extra_barriers = 0.0;
    for (uint32_t machine = 0; machine < machines; ++machine) {
      MachineRoundLoad& load = loads[machine];
      const WorkerSendStats& send = workers[machine].send_stats();
      load.cross_bytes_out = send.wire_cross * bytes_per_message * scale;
      double wire_cross_in = 0.0;
      for (const auto& sender_sink : sinks) {
        wire_cross_in += sender_sink->wire_cross_in()[machine];
      }
      load.cross_bytes_in = wire_cross_in * bytes_per_message * scale;
      double recv_wire_units = options_.profile.combines_messages
                                   ? load.processed_messages
                                   : load.recv_messages;
      // A machine's message work is the larger of its receive and send
      // sides (serialization costs the sender as much as deserialization
      // costs the receiver); this prices seed supersteps, whose traffic
      // is all outbound. Sender-side combining does NOT reduce the work:
      // every logical message still passes through the combiner (it only
      // shrinks wire bytes and buffers).
      load.processed_messages =
          std::max(load.recv_messages, send.logical_sent);
      if (options_.profile.combines_messages) {
        // Merged messages skip serialization/allocation; only the fold
        // remains.
        load.processed_messages *= options_.profile.combined_work_fraction;
      }
      // Receive buffers drain into compute while send buffers stream out:
      // the resident peak is the larger direction, not their sum.
      load.buffered_message_bytes =
          std::max(recv_wire_units, send.wire_sent) * bytes_per_message *
          scale;
      // Superstep splitting (Facebook Giraph): a message-heavy round is
      // chopped into sub-steps, capping the resident buffer at the
      // threshold; every extra sub-step costs one more barrier.
      double split_threshold =
          options_.profile.superstep_split_threshold_bytes;
      if (split_threshold > 0.0 &&
          load.buffered_message_bytes > split_threshold) {
        double sub_steps =
            std::ceil(load.buffered_message_bytes / split_threshold);
        round_extra_barriers =
            std::max(round_extra_barriers, sub_steps - 1.0);
        load.buffered_message_bytes = split_threshold;
      }
      load.sent_messages = send.logical_sent * scale;
      load.recv_messages *= scale;
      load.processed_messages *= scale;
      load.active_vertices *= scale;
      load.compute_units = sinks[machine]->compute_units() * scale;
      load.state_bytes =
          (graph_share_bytes_[machine] + program.StateBytes(machine)) *
          scale;
      double carryover = options_.carryover_residual_bytes.empty()
                             ? 0.0
                             : options_.carryover_residual_bytes[machine];
      load.residual_bytes = (carryover + program.ResidualBytes(machine)) *
                            scale;
    }

    double edge_stream_per_machine = 0.0;
    if (options_.profile.out_of_core) {
      for (double bytes : edge_stream_bytes_) {
        edge_stream_per_machine = std::max(edge_stream_per_machine, bytes);
      }
      // Edge partitions far smaller than memory live in the OS page cache
      // after the first round; only partitions that genuinely cannot stay
      // cached keep hitting the disk every round.
      if (edge_stream_per_machine * scale <
          0.25 * options_.cluster.machine.usable_memory_bytes) {
        edge_stream_per_machine = 0.0;
      }
      // The semi-streaming engine only streams adjacency lists that are
      // actually scanned this round; tasks report scans as compute units
      // (one per edge).
      double scanned_units = 0.0;
      for (const auto& sender_sink : sinks) {
        scanned_units += sender_sink->compute_units();
      }
      double scanned_fraction =
          scanned_units > 0.0
              ? std::min(1.0, scanned_units /
                                  std::max<double>(graph_.NumEdges(), 1.0))
              : std::min(1.0, active_vertices_total /
                                  std::max<double>(graph_.NumVertices(), 1.0));
      edge_stream_per_machine *= scale * scanned_fraction;
    }
    RoundStats stats =
        cost_model_.EvaluateRound(loads, edge_stream_per_machine);
    stats.round = round;
    if (round_extra_barriers > 0.0) {
      double extra = round_extra_barriers * stats.barrier_seconds;
      stats.barrier_seconds += extra;
      stats.total_seconds += extra;
    }

    // --- Fault tolerance: checkpoints and injected failures ---
    double round_checkpoint_seconds = 0.0;
    double round_recovery_seconds = 0.0;
    if (options_.checkpoint_interval_rounds > 0 && round > 0 &&
        round % options_.checkpoint_interval_rounds == 0) {
      // Synchronous checkpoint: every machine flushes its resident data.
      double checkpoint_time = stats.max_memory_bytes /
                               options_.cluster.machine.disk_bandwidth;
      stats.total_seconds += checkpoint_time;
      result.checkpoint_seconds += checkpoint_time;
      round_checkpoint_seconds = checkpoint_time;
      ++result.checkpoints_taken;
      seconds_since_checkpoint_ = 0.0;
    }
    if (round == options_.inject_failure_at_round &&
        !result.failure_recovered) {
      // A machine dies: reload the last checkpoint (or restart) and
      // replay every round since. The replay re-executes the same
      // deterministic rounds, so its cost is the elapsed time since the
      // checkpoint plus the reload itself.
      double reload_time =
          options_.checkpoint_interval_rounds > 0
              ? stats.max_memory_bytes /
                    options_.cluster.machine.disk_bandwidth
              : 0.0;
      double replay_time = options_.checkpoint_interval_rounds > 0
                               ? seconds_since_checkpoint_
                               : result.seconds;
      result.recovery_seconds = reload_time + replay_time;
      stats.total_seconds += result.recovery_seconds;
      round_recovery_seconds = result.recovery_seconds;
      result.failure_recovered = true;
    }
    seconds_since_checkpoint_ += stats.total_seconds;

    if (tracer != nullptr) {
      // The round partitions: the machines work (compute with
      // network/disk stalls overlapped), then the barrier, then any
      // checkpoint flush and failure recovery. Round boundaries are
      // anchored to the same running sum result.seconds uses, so round
      // starts are monotone by FP-addition monotonicity; the child
      // chain is clamped into [t0, t_end] so nesting survives the last
      // ulp of rounding. Per-phase maxima that do not form a timeline
      // (they come from different machines) travel as span args.
      const double t0 = options_.trace_time_offset_seconds + result.seconds;
      const double t_end = options_.trace_time_offset_seconds +
                           (result.seconds + stats.total_seconds);
      const double work = stats.total_seconds - stats.barrier_seconds -
                          round_checkpoint_seconds -
                          round_recovery_seconds;
      tracer->Begin(trace_track, "round", t0,
                    {{"round", static_cast<double>(round)},
                     {"messages", stats.messages},
                     {"message_bytes", stats.message_bytes},
                     {"cross_machine_bytes", stats.cross_machine_bytes},
                     {"active_vertices", stats.active_vertices}});
      double t = t0;
      auto child = [&](const char* name, double duration,
                       std::vector<TraceArg> args = {}) {
        tracer->Begin(trace_track, name, t, std::move(args));
        t = std::min(t + duration, t_end);
        tracer->End(trace_track, t);
      };
      child("compute", work,
            {{"max_compute_seconds", stats.compute_seconds},
             {"network_stall_seconds", stats.network_seconds},
             {"disk_stall_seconds", stats.disk_stall_seconds},
             {"thrash_multiplier", stats.thrash_multiplier}});
      child("barrier", stats.barrier_seconds);
      if (round_checkpoint_seconds > 0.0) {
        child("checkpoint", round_checkpoint_seconds);
      }
      if (round_recovery_seconds > 0.0) {
        child("recovery", round_recovery_seconds);
      }
      tracer->End(trace_track, t_end);
      tracer->Gauge(trace_track, "memory_bytes", t_end,
                    stats.max_memory_bytes);
      tracer->Gauge(trace_track, "residual_bytes", t_end,
                    stats.max_residual_bytes);
    }

    result.seconds += stats.total_seconds;
    result.total_messages += stats.messages;
    result.peak_memory_bytes =
        std::max(result.peak_memory_bytes, stats.max_memory_bytes);
    result.peak_residual_bytes =
        std::max(result.peak_residual_bytes, stats.max_residual_bytes);
    result.peak_buffered_bytes =
        std::max(result.peak_buffered_bytes, stats.max_buffered_bytes);
    result.network_overuse_seconds += stats.network_overuse_seconds;
    result.disk_overuse_seconds += stats.disk_overuse_seconds;
    result.disk_utilization += stats.disk_io_seconds;  // Normalised below.
    result.disk_saturated = result.disk_saturated || stats.disk_saturated;
    result.max_io_queue_length =
        std::max(result.max_io_queue_length, stats.io_queue_length);
    result.rounds.push_back(stats);
    result.num_rounds = round + 1;

    if (stats.overflow || result.seconds > cutoff) {
      result.overloaded = true;
      if (options_.stop_early_on_overload) break;
    }

    // --- Deliver: drain all outboxes into next-round inboxes ---
    // Parallel by destination: shard d touches only the senders' outboxes
    // for machine d and machine d's inbox, and appends them in fixed
    // sender order — byte-identical to the serial sender-major drain.
    // A destination fed by exactly one sender (every single-machine
    // cluster, and any quiet destination) swaps buffers instead of
    // copying; multi-sender destinations reserve the exact total before
    // the column appends.
    const uint64_t deliver_start_ns = wallclock::NowNs();
    pool.ParallelFor(machines, [&workers, machines](uint32_t dest) {
      MessageBlock& inbox = workers[dest].inbox();
      inbox.Clear();
      uint32_t nonempty_senders = 0;
      uint32_t solo_sender = 0;
      size_t total = 0;
      for (uint32_t sender = 0; sender < machines; ++sender) {
        const size_t outbox_size = workers[sender].OutboxSize(dest);
        if (outbox_size != 0) {
          ++nonempty_senders;
          solo_sender = sender;
          total += outbox_size;
        }
      }
      if (nonempty_senders == 1) {
        workers[solo_sender].SwapOutbox(dest, &inbox);
      } else if (nonempty_senders > 1) {
        inbox.Reserve(total);
        for (uint32_t sender = 0; sender < machines; ++sender) {
          if (workers[sender].OutboxSize(dest) != 0) {
            workers[sender].Drain(dest, &inbox);
          }
        }
      }
    });
    if (collect_times) {
      result.phase.deliver_seconds += wallclock::SecondsSince(deliver_start_ns);
    }
    for (uint32_t machine = 0; machine < machines; ++machine) {
      if (!workers[machine].inbox().empty()) {
        any_messages_pending = true;
      }
    }
    if (!any_messages_pending) break;  // Quiescence: vote-to-halt.
    if (program.ShouldTerminate(round + 1)) break;
    bool aggregate_used = false;
    double aggregate_sum = 0.0;
    for (const auto& sender_sink : sinks) {
      aggregate_used = aggregate_used || sender_sink->aggregate_used();
      aggregate_sum += sender_sink->aggregate_sum();
    }
    if (aggregate_used && program.TerminateOnAggregate(aggregate_sum)) {
      break;
    }
  }

  if (result.seconds > 0.0) {
    result.disk_utilization =
        std::min(1.0, result.disk_utilization / result.seconds);
  }
  if (result.overloaded) {
    result.seconds = std::max(result.seconds, cutoff);
  }
  if (collect_times) {
    for (const Worker& worker : workers) {
      result.phase.group_seconds += worker.group_ns() * 1e-9;
      result.phase.stage_seconds += worker.stage_ns() * 1e-9;
    }
  }
  if (tracer != nullptr) {
    // One Add per run, mirroring RunReport::Absorb's per-batch
    // accumulation so the flat counters reconcile bitwise with the
    // report totals (per-round adds would associate differently).
    tracer->Add("engine.messages", result.total_messages);
    tracer->Add("engine.rounds", static_cast<double>(result.num_rounds));
    tracer->Add("engine.seconds", result.seconds);
    tracer->Add("engine.checkpoint_seconds", result.checkpoint_seconds);
    tracer->Add("engine.checkpoints",
                static_cast<double>(result.checkpoints_taken));
    tracer->Peak("engine.peak_memory_bytes", result.peak_memory_bytes);
    tracer->Peak("engine.peak_residual_bytes",
                 result.peak_residual_bytes);
    tracer->Peak("engine.peak_buffered_bytes",
                 result.peak_buffered_bytes);
    if (mirror_plan_ != nullptr) {
      tracer->Peak("engine.mirrors",
                   static_cast<double>(mirror_plan_->TotalMirrors()));
    }
  }
  return result;
}

}  // namespace vcmp
