#include "engine/sync_engine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <cmath>
#include <span>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/wall_clock.h"
#include "obs/shard_spans.h"
#include "obs/tracer.h"
#include "ooc/ooc_runtime.h"

namespace vcmp {

namespace {

/// Default shard count per machine when compute_shards_per_machine is 0.
/// Fixed (never derived from the thread count) so the shard plan — and
/// with it every reduction order — is a pure function of the round's
/// inbox.
constexpr uint32_t kDefaultShardsPerMachine = 16;

/// Largest (local vertices x tag universe) slot space a destination may
/// have before the merge's dense combine tables fall back to hash
/// probing. 2^17 slots keep one table's hot arrays (position + epoch,
/// 8 bytes/slot) around a megabyte — L2-resident on anything current —
/// while covering every benchmark task's per-machine share.
constexpr size_t kDenseCombineMaxSlots = size_t{1} << 17;

/// Largest slot space a shard sink will pre-combine into its staging
/// arenas. Tighter than the merge bound: every (shard, destination)
/// pair owns a table, so the budget multiplies by shards x machines^2.
/// 2^15 slots x 8 bytes keeps each table L2-resident while covering
/// point-to-point tasks like MSSP (~31K slots per machine); bigger slot
/// spaces skip pre-combining entirely (a per-send probe into a table
/// that large costs more than the fold it saves, and the merge still
/// folds duplicates to the identical result because pre-combining is
/// only enabled for exact-fold combiners).
constexpr size_t kDensePrecombineMaxSlots = size_t{1} << 15;

}  // namespace

/// Contiguous item ranges assigning one machine's round to its compute
/// shards. `bounds` has shards + 1 entries; shard s covers items
/// [bounds[s], bounds[s + 1]) — run indices for message rounds, positions
/// into vertices_by_machine_ for the seeding superstep. Cuts always land
/// on vertex boundaries (all runs of one target stay in one shard), so
/// per-vertex RNG reseeding and active-vertex counting see whole
/// vertices. The plan depends only on the shard count and the round's
/// payload weights: it is identical at every thread count.
struct SyncEngine::ShardPlan {
  std::vector<uint32_t> bounds;

  /// Greedy proportional cut: shard s ends at the first vertex boundary
  /// where the cumulative weight reaches total * (s + 1) / shards.
  void BuildForVertices(const Graph& graph,
                        const std::vector<VertexId>& vertices,
                        uint32_t shards) {
    uint64_t total = 0;
    for (VertexId v : vertices) total += 1 + graph.OutDegree(v);
    bounds.assign(shards + 1, 0);
    const uint32_t n = static_cast<uint32_t>(vertices.size());
    uint32_t i = 0;
    uint64_t cum = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      bounds[s] = i;
      const uint64_t target = total * (s + 1) / shards;
      while (i < n && cum < target) {
        cum += 1 + graph.OutDegree(vertices[i]);
        ++i;
      }
    }
    bounds[shards] = n;
  }

  /// Same cut, weighted by a position-indexed degree column (the real
  /// out-of-core path streams degrees from the state file instead of
  /// touching the CSR; the values are identical to graph.OutDegree, so
  /// the resulting plan is too).
  void BuildForDegrees(const std::vector<uint32_t>& degrees,
                       uint32_t shards) {
    uint64_t total = 0;
    for (uint32_t d : degrees) total += 1 + static_cast<uint64_t>(d);
    bounds.assign(shards + 1, 0);
    const uint32_t n = static_cast<uint32_t>(degrees.size());
    uint32_t i = 0;
    uint64_t cum = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      bounds[s] = i;
      const uint64_t target = total * (s + 1) / shards;
      while (i < n && cum < target) {
        cum += 1 + static_cast<uint64_t>(degrees[i]);
        ++i;
      }
    }
    bounds[shards] = n;
  }

  void BuildForRuns(std::span<const MessageRun> runs, uint32_t shards) {
    uint64_t total = 0;
    for (const MessageRun& run : runs) total += run.size() + 1;
    bounds.assign(shards + 1, 0);
    const uint32_t n = static_cast<uint32_t>(runs.size());
    uint32_t i = 0;
    uint64_t cum = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      bounds[s] = i;
      const uint64_t target = total * (s + 1) / shards;
      while (i < n && cum < target) {
        const VertexId vertex = runs[i].target;
        while (i < n && runs[i].target == vertex) {  // Whole vertex.
          cum += runs[i].size() + 1;
          ++i;
        }
      }
    }
    bounds[shards] = n;
  }
};

/// Result of merging one (sender, destination) outbox from the sender's
/// shard arenas. Written by exactly one merge task, read serially after
/// the merge barrier.
struct SyncEngine::MergeSlot {
  /// Logical / wire traffic the sender pushed INTO the destination
  /// machine, folded by walking the shard arenas in shard order — i.e.
  /// the sender's emission order, which shard boundaries cannot change.
  double logical_cross_in = 0.0;
  double wire_cross_in = 0.0;
  /// Combining only: distinct (target, tag) keys created in this outbox
  /// (integer-valued; the sender's wire_sent contribution).
  double new_wire_keys = 0.0;
  uint64_t merge_ns = 0;

  void Clear() { *this = MergeSlot{}; }
};

/// Direct-indexed replacement for the merge fold's CombineIndex, usable
/// when the program declares a bounded tag universe: slot
/// local_index(target) * tags + tag maps each live (target, tag) key to
/// its outbox position with one array read instead of a hash probe.
/// First-touch still appends to the outbox, so outbox bytes are identical
/// to the hash path's at every shard and thread count. Epoch tagging makes
/// Clear O(1); tables are cleared once per round after delivery drains the
/// outboxes, exactly when the per-worker CombineIndexes are.
struct SyncEngine::DenseCombineTable {
  std::vector<uint32_t> position;  // slot -> outbox position
  std::vector<uint32_t> epoch;     // valid iff == cur_epoch
  uint32_t cur_epoch = 1;

  void EnsureSlots(size_t slots) {
    if (position.size() < slots) {
      position.resize(slots);
      epoch.resize(slots, 0);
    }
  }
  void Clear() {
    ++cur_epoch;
    if (cur_epoch == 0) {  // Wrapped: stale epochs could alias; rezero.
      std::fill(epoch.begin(), epoch.end(), 0u);
      cur_epoch = 1;
    }
  }
};

/// Accumulator for the unified per-destination fold (engine-level sender
/// combining without mirroring or real OOC): one table per destination
/// machine folds EVERY sender's shard arenas — senders in machine order,
/// each sender's arenas in shard order — which is precisely the FP
/// operation sequence the receiver's per-run fold would perform on the
/// raw grouped inbox (grouping is stable, sender-major). The fold result,
/// emitted in ascending (target, tag) slot order, therefore IS the next
/// round's inbox: already combined, already sorted, no per-pair outboxes
/// to stage, deliver, or re-group. `last_sender` reproduces the per-pair
/// wire counts (a sender contributes one wire unit per distinct key it
/// touches) without materializing per-sender outboxes.
struct SyncEngine::UnifiedCombineTable {
  /// One slot per (local vertex, tag) key, packed so a fold touches one
  /// cache line, not one per column.
  struct Slot {
    double value;
    double mult;
    uint32_t last_sender;
    uint32_t epoch;  // valid iff == cur_epoch
  };
  static constexpr size_t kBlockShift = 6;  // 64 slots per block.
  std::vector<Slot> slots;
  /// Per-64-slot-block epoch marks: the emission scan skips whole blocks
  /// no fold entry touched, which is most of them for sparse rounds.
  std::vector<uint32_t> block_epoch;
  uint32_t cur_epoch = 0;

  void EnsureSlots(size_t count) {
    if (slots.size() < count) {
      slots.resize(count, Slot{0.0, 0.0, 0, 0});
      block_epoch.resize((count >> kBlockShift) + 1, 0);
    }
  }
  /// Starts a fresh fold; entries only live for one fold episode.
  void BeginFold() {
    ++cur_epoch;
    if (cur_epoch == 0) {  // Wrapped: stale epochs could alias; rezero.
      for (Slot& slot : slots) slot.epoch = 0;
      std::fill(block_epoch.begin(), block_epoch.end(), 0u);
      cur_epoch = 1;
    }
  }
};

/// Per-(machine, shard) MessageSink: raw staging arenas (one per
/// destination machine), per-vertex log records, and a per-vertex-reseeded
/// random stream.
///
/// The sharded compute phase never writes shared machine state: every
/// message lands in this shard's arena, every statistic in the current
/// vertex's log record, and every RNG draw comes from a stream seeded by
/// (seed, round, vertex). Cross-shard reductions happen after the barrier
/// in fixed orders — arena concatenation in shard order equals the serial
/// emission order, and log records concatenated across shards equal the
/// machine's vertex order — so results are bit-identical at every thread
/// count AND every shard count (per-shard partial sums would only give
/// per-shard-count invariance).
class SyncEngine::ShardSink : public MessageSink {
 public:
  /// Everything one vertex contributed to its machine's round statistics.
  /// Folded (per machine) in vertex order during finalization; the fields
  /// themselves accumulate in the vertex's own emission order, entirely
  /// within one shard.
  struct VertexLog {
    double compute_units = 0.0;
    double aggregate = 0.0;
    double logical_sent = 0.0;
    /// Wire counts are only meaningful without a combiner (raw staging:
    /// one wire unit per logical unit; mirror broadcasts count mirror
    /// hops). Under combining the merge counts distinct keys instead.
    double wire_sent = 0.0;
    double logical_cross = 0.0;
    double wire_cross = 0.0;
    double residual_bytes = 0.0;
    bool aggregate_used = false;
  };

  /// One pre-combine table entry: where in the destination arena this
  /// (local vertex, tag) key currently lives, valid iff epoch matches
  /// the sink's current round epoch.
  struct DenseSlot {
    uint32_t position;
    uint32_t epoch;
  };

  ShardSink() = default;

  /// (Re)binds the sink to an engine for one Run. The engine pointer is
  /// refreshed every call because sinks persist in the QueryContext
  /// across a query's batches, while the runner constructs a fresh
  /// engine per batch.
  void Configure(const SyncEngine* engine, uint32_t machine,
                 uint32_t num_machines, uint64_t query,
                 const Combiner* combiner, bool precombine,
                 uint32_t tag_universe, bool slot_targets) {
    engine_ = engine;
    machine_ = machine;
    num_machines_ = num_machines;
    query_ = query;
    machine_of_ = engine_->partition_.assignment.data();
    local_index_ = engine_->local_index_.data();
    mirror_broadcast_only_ = engine_->options_.profile.mirroring;
    combiner_ = combiner;
    combiner_kind_ = combiner ? combiner->kind() : CombinerKind::kCustom;
    precombine_ = precombine;
    tag_universe_ = tag_universe;
    slot_targets_ = slot_targets;
    arenas_.resize(num_machines);
    cross_weights_.resize(num_machines);
    dense_.resize(num_machines);
    for (uint32_t dest = 0; dest < num_machines; ++dest) {
      size_t slots =
          (precombine_ && tag_universe > 0)
              ? engine_->vertices_by_machine_[dest].size() * tag_universe
              : 0;
      if (slots == 0 || slots > kDensePrecombineMaxSlots) slots = 0;
      if (dense_[dest].size() != slots) {
        dense_[dest].assign(slots, DenseSlot{0, 0});
      }
    }
  }

  void BeginRound(uint64_t round) {
    round_ = round;
    for (MessageBlock& arena : arenas_) arena.Clear();
    for (std::vector<double>& weights : cross_weights_) weights.clear();
    ++dense_epoch_;
    if (dense_epoch_ == 0) {  // Wrapped: stale epochs could alias; rezero.
      for (std::vector<DenseSlot>& table : dense_) {
        std::fill(table.begin(), table.end(), DenseSlot{0, 0});
      }
      dense_epoch_ = 1;
    }
    log_.clear();
    cur_ = nullptr;
  }

  /// Opens the log record for `v` and reseeds the random stream from
  /// (seed, query, round, v): the draw sequence a vertex sees depends
  /// only on those coordinates, never on which shard, thread or
  /// concurrency level ran it. Query 0 keeps the historical
  /// (seed, round, v) stream bit for bit.
  void BeginVertex(VertexId v) {
    log_.emplace_back();
    cur_ = &log_.back();
    rng_ = Rng(Rng::MixSeed(engine_->options_.seed, query_, round_, v));
  }

  void Send(VertexId target, uint32_t tag, double value,
            double multiplicity) override {
    VCMP_CHECK(!mirror_broadcast_only_)
        << "Pregel+(mirror) only exposes the broadcast interface";
    SendInternal(target, tag, value, multiplicity);
  }

  void Broadcast(VertexId from, uint32_t tag, double value,
                 double multiplicity_per_neighbor) override {
    const Graph& graph = engine_->graph_;
    const MirrorPlan* plan = engine_->mirror_plan_.get();
    if (plan != nullptr && plan->IsMirrored(from)) {
      // One wire message per remote mirror machine; the mirrors fan out
      // locally. Every neighbour still receives (and buffers/processes) a
      // logical message, but only the mirror hops cross the network and
      // only they occupy the sender's wire statistics. Each staged cross
      // message carries a cross weight — 1.0 on the first touch of its
      // machine within this broadcast, else 0.0 — so the merge can fold
      // the destination's cross-in traffic from the arenas in emission
      // order without re-deriving broadcast boundaries.
      const double mult = multiplicity_per_neighbor;
      const double remote = plan->RemoteMirrorMachines(from);
      cur_->wire_cross += remote;
      cur_->logical_cross += remote;
      cur_->wire_sent += remote;
      std::vector<uint8_t>& seen = mirror_seen_;
      seen.assign(num_machines_, 0);
      std::span<const VertexId> neighbors = graph.Neighbors(from);
      for (VertexId u : neighbors) {
        const uint32_t machine = machine_of_[u];
        arenas_[machine].PushBack(u, tag, value, mult);
        if (machine != machine_) {
          cross_weights_[machine].push_back(seen[machine] ? 0.0 : 1.0);
          seen[machine] = 1;
        }
        cur_->logical_sent += mult;
      }
      AddComputeUnits(static_cast<double>(neighbors.size()));
      return;
    }
    // No mirror: broadcast degenerates to per-neighbour sends.
    for (VertexId u : graph.Neighbors(from)) {
      SendInternal(u, tag, value, multiplicity_per_neighbor);
    }
  }

  void AddComputeUnits(double units) override {
    cur_->compute_units += units;
  }

  void Aggregate(double value) override {
    cur_->aggregate += value;
    cur_->aggregate_used = true;
  }

  void AddResidualBytes(double bytes) override {
    cur_->residual_bytes += bytes;
  }

  uint64_t round() const override { return round_; }
  Rng& rng() override { return rng_; }

  const MessageBlock& arena(uint32_t dest) const { return arenas_[dest]; }
  const std::vector<double>& cross_weights(uint32_t dest) const {
    return cross_weights_[dest];
  }
  const std::vector<VertexLog>& log() const { return log_; }

 private:
  void SendInternal(VertexId target, uint32_t tag, double value,
                    double multiplicity) {
    const uint32_t target_machine = machine_of_[target];
    cur_->logical_sent += multiplicity;
    cur_->wire_sent += multiplicity;
    if (target_machine != machine_) {
      cur_->logical_cross += multiplicity;
      cur_->wire_cross += multiplicity;
      if (mirror_broadcast_only_) {
        // Mirror profiles mix first-touch hops (weight 1/0) with plain
        // sends from unmirrored vertices (weight = multiplicity); the
        // weight column keeps the merge's cross-in fold uniform.
        cross_weights_[target_machine].push_back(multiplicity);
      }
    }
    MessageBlock& arena = arenas_[target_machine];
    VertexId stored_target = target;
    std::vector<DenseSlot>& table = dense_[target_machine];
    if (slot_targets_ || !table.empty()) {
      const size_t key_slot =
          static_cast<size_t>(local_index_[target]) * tag_universe_ + tag;
      // Under the unified fold the arena's target column carries the
      // destination slot index instead of the vertex id: the fold then
      // addresses its combine table straight off the stream, with no
      // dependent local_index_ lookup, and the emission scan restores
      // real vertex ids from the destination's local vertex list.
      if (slot_targets_) stored_target = static_cast<VertexId>(key_slot);
      if (!table.empty()) {
        // Shard-local dense combine table: fold same-(target, tag)
        // messages in this shard's emission order before they hit the
        // arena, via a direct (local vertex, tag) index — no hashing on
        // the send path. The merge later folds the per-shard segment
        // results in shard order; exact_fold makes that bit-identical to
        // folding the raw stream (the per-vertex wire stats above are
        // ignored under combining — the merge recounts distinct keys),
        // which is also why destinations too big for a table can skip
        // pre-combining outright.
        DenseSlot& entry = table[key_slot];
        if (entry.epoch == dense_epoch_) {
          const size_t position = entry.position;
          switch (combiner_kind_) {
            case CombinerKind::kSum:
              arena.values()[position] += value;
              arena.multiplicities()[position] += multiplicity;
              break;
            case CombinerKind::kMin:
              if (value < arena.values()[position]) {
                arena.values()[position] = value;
              }
              arena.multiplicities()[position] += multiplicity;
              break;
            case CombinerKind::kCustom: {
              Message into = arena.At(position);
              combiner_->Merge(into,
                               Message{target, tag, value, multiplicity});
              arena.Set(position, into);
              break;
            }
          }
          return;
        }
        entry.epoch = dense_epoch_;
        entry.position = static_cast<uint32_t>(arena.size());
      }
    }
    arena.PushBack(stored_target, tag, value, multiplicity);
  }

  const SyncEngine* engine_ = nullptr;  // Rebound by Configure each Run.
  uint32_t machine_ = 0;
  uint32_t num_machines_ = 0;
  uint64_t query_ = 0;
  const uint32_t* machine_of_ = nullptr;
  bool mirror_broadcast_only_ = false;
  const Combiner* combiner_ = nullptr;
  CombinerKind combiner_kind_ = CombinerKind::kCustom;
  bool precombine_ = false;
  bool slot_targets_ = false;
  uint32_t tag_universe_ = 0;
  const uint32_t* local_index_ = nullptr;
  uint64_t round_ = 0;
  uint32_t dense_epoch_ = 0;
  Rng rng_{0};
  VertexLog* cur_ = nullptr;
  std::vector<MessageBlock> arenas_;          // One per destination.
  /// Pre-combining only: per destination, one {arena position, epoch}
  /// entry per (local vertex, tag) slot; empty when the destination's
  /// slot space exceeds kDensePrecombineMaxSlots.
  std::vector<std::vector<DenseSlot>> dense_;
  std::vector<std::vector<double>> cross_weights_;  // Mirror mode only.
  std::vector<VertexLog> log_;
  std::vector<uint8_t> mirror_seen_;
};

/// The reusable per-query buffers Run hangs off the caller's
/// QueryContext: per-machine workers and per-(machine, shard) sinks.
/// They used to be engine members; moving them here is what makes Run
/// const and the engine shareable across concurrent queries, while one
/// query still reuses its capacity across batches exactly as before.
struct SyncEngine::RunScratch : QueryContext::Scratch {
  std::vector<Worker> workers;
  std::vector<std::unique_ptr<ShardSink>> shard_sinks;
  /// machines x machines dense merge tables (sender-major), sized lazily
  /// to the destination's (local vertices x tag universe) slot space.
  /// Empty when the program's tag universe is unbounded or too large.
  std::vector<DenseCombineTable> dense_combine;
  /// One accumulator per destination for the unified fold path. Empty
  /// when that path is inactive.
  std::vector<UnifiedCombineTable> unified_combine;
};

SyncEngine::~SyncEngine() = default;  // ShardSink is complete here.

EngineOptions SyncEngine::NormalizeOptions(EngineOptions options) {
  if (options.ooc.enabled && options.profile.out_of_core &&
      options.ooc.memory_budget_bytes > 0) {
    // The real runtime only grants messages their governor share of the
    // budget; pointing the cost model's resident allowance at the same
    // share keeps modeled and measured spilling comparable.
    options.profile.ooc_budget_bytes =
        MemoryGovernor::MessageShareBytes(options.ooc.memory_budget_bytes);
  }
  return options;
}

SyncEngine::SyncEngine(const Graph& graph, const Partitioning& partition,
                       EngineOptions options)
    : graph_(graph),
      partition_(partition),
      options_(NormalizeOptions(std::move(options))),
      cost_model_(options_.cluster, options_.profile, options_.cost) {
  if (options_.profile.mirroring) {
    mirror_plan_ = std::make_unique<MirrorPlan>(
        graph_, partition_, options_.profile.mirror_degree_threshold);
  }
  ComputeGraphShares();
}

void SyncEngine::ComputeGraphShares() {
  uint32_t machines = partition_.num_machines;
  graph_share_bytes_.assign(machines, 0.0);
  edge_stream_bytes_.assign(machines, 0.0);
  vertices_by_machine_.assign(machines, {});
  local_index_.assign(graph_.NumVertices(), 0);
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    uint32_t machine = partition_.MachineOf(v);
    local_index_[v] =
        static_cast<uint32_t>(vertices_by_machine_[machine].size());
    vertices_by_machine_[machine].push_back(v);
    // CSR share: one offset entry + degree target entries.
    graph_share_bytes_[machine] +=
        sizeof(EdgeIndex) + graph_.OutDegree(v) * sizeof(VertexId);
    // Out-of-core edge stream: 8-byte (src, dst) records per round.
    edge_stream_bytes_[machine] += graph_.OutDegree(v) * 8.0;
  }
  if (mirror_plan_ != nullptr) {
    for (uint32_t m = 0; m < machines; ++m) {
      graph_share_bytes_[m] += mirror_plan_->MirrorStateBytesPerMachine();
    }
  }
}

Result<EngineResult> SyncEngine::Run(VertexProgram& program) const {
  QueryContext ctx;  // Query 0, private pool: the historical behavior.
  return Run(program, ctx);
}

Result<EngineResult> SyncEngine::Run(VertexProgram& program,
                                     QueryContext& ctx) const {
  // Fault-tolerance bookkeeping: simulated time elapsed since the last
  // checkpoint, i.e. the replay cost of a failure now.
  double seconds_since_checkpoint = 0.0;
  const uint32_t machines = partition_.num_machines;
  if (machines != options_.cluster.num_machines) {
    return Status::InvalidArgument(
        "partition machine count does not match cluster spec");
  }
  if (partition_.assignment.size() != graph_.NumVertices()) {
    return Status::InvalidArgument("partition does not cover the graph");
  }

  // Real out-of-core runtime: fresh per Run (spill files and caches are
  // round-lifecycle state), validated against the infeasible floor.
  std::unique_ptr<OocRuntime> ooc_runtime;
  if (options_.ooc.enabled) {
    if (!options_.profile.out_of_core) {
      return Status::InvalidArgument(
          "real out-of-core execution (ooc.enabled) requires an "
          "out-of-core system profile such as GraphD");
    }
    OocRuntime::Setup setup;
    setup.options = options_.ooc;
    setup.machines = machines;
    setup.stat_scale = options_.stat_scale;
    setup.bytes_per_message = options_.profile.bytes_per_message;
    setup.message_memory_overhead =
        options_.profile.message_memory_overhead;
    VCMP_ASSIGN_OR_RETURN(
        ooc_runtime,
        OocRuntime::Create(setup, graph_, vertices_by_machine_));
  }
  OocRuntime* const rt = ooc_runtime.get();

  // Reusable buffers live in the query context, not the engine, so
  // concurrent queries sharing this engine never alias them. Workers
  // persist across a query's Run calls; Reset retains their capacity so
  // repeated runs (trainer probes, batch loops) allocate nothing new.
  if (dynamic_cast<RunScratch*>(ctx.sync_scratch.get()) == nullptr) {
    ctx.sync_scratch = std::make_unique<RunScratch>();
  }
  RunScratch& scratch = static_cast<RunScratch&>(*ctx.sync_scratch);
  scratch.workers.resize(machines);
  std::vector<Worker>& workers = scratch.workers;
  const bool collect_times = options_.collect_phase_times;
  // The combiner is active when the simulated system combines (GraphLab
  // sync) OR the engine-level sender_combining switch exploits the
  // program's combiner under a non-combining profile (Pregel-style).
  // Mirror profiles keep their own wire-dedup path. `combining` below is
  // the one flag every stats/cost branch keys on, so combined counts
  // flow into RoundLoad, spill accounting and the batcher's fits
  // regardless of which switch enabled it.
  const Combiner* combiner =
      (options_.profile.combines_messages ||
       (options_.sender_combining && !options_.profile.mirroring))
          ? program.combiner()
          : nullptr;
  const bool combining = combiner != nullptr;
  // Shard-local pre-combining additionally requires a fold that may be
  // reassociated bitwise (Combiner::exact_fold): per-shard tables fold
  // contiguous emission segments, and the merge folds the segment
  // results in shard order, so exactness makes the outbox bit-identical
  // to merge-time-only combining at every shard and thread count.
  const bool precombine =
      combining && options_.shard_precombine && combiner->exact_fold();
  // A bounded tag universe (VertexProgram::combine_tag_universe) lets the
  // merge fold through direct-indexed tables instead of hash probing.
  // Gate on the largest destination's slot space; unbounded or oversized
  // universes keep the CombineIndex path.
  const uint32_t tag_universe =
      combining ? program.combine_tag_universe() : 0;
  std::vector<size_t> dense_slots(machines, 0);
  bool dense_combine = false;
  if (tag_universe > 0) {
    size_t max_slots = 0;
    for (uint32_t machine = 0; machine < machines; ++machine) {
      dense_slots[machine] = vertices_by_machine_[machine].size() *
                             static_cast<size_t>(tag_universe);
      max_slots = std::max(max_slots, dense_slots[machine]);
    }
    dense_combine = max_slots > 0 && max_slots <= kDenseCombineMaxSlots;
  }
  // Engine-level sender combining (no mirroring, no real OOC, bounded tag
  // universe) takes the unified per-destination fold: merge, delivery and
  // grouping collapse into one pass that writes each destination's next
  // inbox directly — combined, sorted, one element per (target, tag) key.
  // Profile-level combining (GraphLab et al.) and OOC runs keep the
  // per-(sender, dest) merge + delivery path, whose byte-for-byte outbox
  // behaviour existing goldens and the spill machinery depend on.
  const bool unified_combine = dense_combine &&
                               !options_.profile.combines_messages &&
                               rt == nullptr &&
                               combiner->kind() != CombinerKind::kCustom;
  scratch.dense_combine.resize(
      (dense_combine && !unified_combine)
          ? static_cast<size_t>(machines) * machines
          : 0);
  scratch.unified_combine.resize(unified_combine ? machines : 0);
  for (Worker& worker : workers) {
    worker.Reset(machines);
    worker.set_collect_timing(collect_times);
    worker.SetCombiner(combiner);
    worker.set_vertex_space(graph_.NumVertices());
  }

  // One sink per (machine, shard): raw staging arenas and per-vertex log
  // records, merged after the compute barrier in fixed shard order.
  const uint32_t shards_per_machine =
      options_.compute_shards_per_machine == 0
          ? kDefaultShardsPerMachine
          : options_.compute_shards_per_machine;
  const uint32_t num_shard_tasks = machines * shards_per_machine;
  scratch.shard_sinks.resize(num_shard_tasks);
  std::vector<std::unique_ptr<ShardSink>>& shard_sinks =
      scratch.shard_sinks;
  for (uint32_t task = 0; task < num_shard_tasks; ++task) {
    if (shard_sinks[task] == nullptr) {
      shard_sinks[task] = std::make_unique<ShardSink>();
    }
    shard_sinks[task]->Configure(this, task / shards_per_machine, machines,
                                 ctx.query_id, combiner, precombine,
                                 tag_universe, unified_combine);
  }

  // The pool outlives the round loop. A context without a pool gets a
  // private one: its threads are created once per Run and parked between
  // parallel sections, instead of spawning and joining a thread set
  // every round. A context WITH a pool (concurrent queries) fans out on
  // the shared workers; per-call completion latches keep the queries'
  // parallel sections independent. Intra-machine sharding means more
  // threads than machines still helps, so the only cap is the optional
  // hardware clamp (oversubscription adds context switches without
  // changing any output — results are thread-count invariant).
  std::unique_ptr<ThreadPool> owned_pool;
  if (ctx.pool == nullptr) {
    const uint32_t thread_count = ThreadPool::ResolveThreads(
        options_.execution_threads, options_.clamp_threads_to_hardware);
    owned_pool = std::make_unique<ThreadPool>(thread_count - 1);
  }
  ThreadPool& pool = ctx.pool != nullptr ? *ctx.pool : *owned_pool;
  const bool steal = options_.enable_work_stealing;
  auto parallel_shards = [&pool, steal](
                             uint32_t count,
                             const std::function<void(uint32_t)>& fn) {
    if (steal) {
      pool.ParallelForStealable(count, fn);
    } else {
      pool.ParallelFor(count, fn);
    }
  };

  EngineResult result;
  const double scale = options_.stat_scale;
  const double cutoff = options_.cost.overload_cutoff_seconds;
  // Wall time spent inside ParallelGroupInboxes across all rounds; folded
  // into phase.group_seconds at the end (per-worker group_ns_ stays zero
  // on the lockstep path, so there is no double count).
  uint64_t parallel_group_ns = 0;

  // Round-loop scratch, reused every round.
  std::vector<ShardPlan> plans(machines);
  std::vector<MergeSlot> merge_slots(
      static_cast<size_t>(machines) * machines);
  std::vector<double> machine_units(machines, 0.0);
  std::vector<double> machine_aggregate(machines, 0.0);
  std::vector<uint8_t> machine_aggregate_used(machines, 0);
  std::vector<double> machine_residual_round(machines, 0.0);
  std::vector<double> residual_ledger(machines, 0.0);
  std::vector<double> shard_weights;  // trace_shard_spans only.
  // Parallel delivery scratch: per-(sender, dest) slice offsets into the
  // destination inbox, and a per-dest flag marking destinations whose
  // copy work was deferred to the sub-machine pass.
  std::vector<size_t> deliver_offsets(static_cast<size_t>(machines) *
                                      machines);
  std::vector<uint8_t> deliver_copy(machines, 0);
  // Unified fold only: wire units folded into each machine's inbox last
  // round (the per-pair path would have delivered this many outbox
  // elements). Read by the NEXT round's receive fold, since the
  // pre-folded inbox no longer carries one element per wire unit.
  std::vector<double> unified_wire_in(machines, 0.0);
  // Real OOC seeding superstep: per-machine degree columns streamed from
  // the vertex-state files (shard planning without touching the CSR).
  std::vector<std::vector<uint32_t>> ooc_degrees(rt != nullptr ? machines
                                                               : 0);

  // Tracing rides the simulated clock: this run sits on the caller's
  // timeline at trace_time_offset_seconds (the runner lines batches up
  // by passing a cumulative offset). All trace content derives from
  // round statistics that are bit-identical across thread counts, so
  // the trace is too.
  Tracer* const tracer = options_.tracer;
  uint32_t trace_track = options_.trace_track;
  if (tracer != nullptr && trace_track == EngineOptions::kAutoTrack) {
    trace_track = tracer->AddTrack("engine", "rounds");
  }

  for (uint64_t round = 0; round <= options_.max_rounds; ++round) {
    if (rt != nullptr && round > 0) {
      // Happens-before edge for the background prefetch jobs launched at
      // the end of last round: after this barrier their staged sections
      // are plain data, consumed lazily (and deterministically) inside
      // TouchSections. The wait is scoped to THIS query's jobs so
      // queries sharing the pool do not couple at each other's barriers.
      rt->WaitPrefetch();
      VCMP_RETURN_IF_ERROR(rt->ConsumeError());
    }
    for (Worker& worker : workers) worker.send_stats().Clear();

    ClusterRoundLoad loads(machines);

    bool any_messages_pending = false;
    const bool use_runs = program.UsesComputeRun();
    const uint64_t compute_start_ns = wallclock::NowNs();

    // --- Phase A: per-machine prep (group, receive fold, shard plan) ---
    // The inbox receive fold is serial per machine — the same FP add
    // order at every thread and shard count — and machines are
    // independent. Grouping itself runs either serially per machine (the
    // historical path) or as pool-wide lockstep passes
    // (ParallelGroupInboxes) with bit-identical grouped output.
    auto prep_rest = [&](uint32_t machine) {
      Worker& worker = workers[machine];
      MachineRoundLoad& load = loads[machine];
      const double* mults = worker.grouped_multiplicities();
      const size_t inbox_size = worker.inbox().size();
      for (size_t i = 0; i < inbox_size; ++i) {
        load.recv_messages += mults[i];
        if (!unified_combine) {
          // Wire units: what was actually serialized/deserialized.
          load.processed_messages += combining ? 1.0 : mults[i];
        }
      }
      if (unified_combine) {
        // Pre-folded inbox: one element per key, so wire units come from
        // the fold that built it (integer counts — bit-identical to what
        // a walk over per-pair outbox elements would sum).
        load.processed_messages += unified_wire_in[machine];
      }
      if (!use_runs) {
        // Built once here, read concurrently by this machine's shards.
        worker.MaterializedInbox();
      }
      if (rt != nullptr) {
        // Page in the vertex-state sections behind this round's targets
        // (ascending section order; prefetched buffers are consumed at
        // exactly the point a synchronous load would install them).
        rt->TouchSections(machine, worker.runs());
      }
      plans[machine].BuildForRuns(worker.runs(), shards_per_machine);
    };
    auto prep_machine = [&](uint32_t machine) {
      Worker& worker = workers[machine];
      ShardPlan& plan = plans[machine];
      if (round == 0) {
        // Seeding superstep: every local vertex runs with an empty inbox;
        // shards balance by out-degree (broadcast seeds scan adjacency).
        // Under real OOC the degrees come off the state file, streamed
        // through the cache so the first round pays real vertex-state
        // I/O like GraphD's load phase would.
        if (rt != nullptr) {
          rt->StreamAllDegrees(machine, &ooc_degrees[machine]);
          plan.BuildForDegrees(ooc_degrees[machine], shards_per_machine);
          return;
        }
        plan.BuildForVertices(graph_, vertices_by_machine_[machine],
                              shards_per_machine);
        return;
      }
      if (rt != nullptr) {
        // Stream last round's spilled overflow back in before grouping;
        // restored messages append after the resident ones, and grouping
        // sorts the union, so the grouped inbox is bit-identical to the
        // uncapped run's.
        rt->RestoreInbox(machine, &worker.inbox());
      }
      if (unified_combine) {
        // Last round's fold wrote the inbox pre-grouped and built the
        // singleton runs alongside; publishing them replaces grouping.
        worker.PublishPregroupedRuns();
      } else {
        worker.GroupInbox();
      }
      prep_rest(machine);
    };
    // With zero pool workers every "parallel" section runs inline on the
    // caller, so the chunked radix passes would only add pass-switching
    // overhead over the serial groupers; outputs are bit-identical either
    // way, so the single-thread case keeps the serial path.
    if (round > 0 && !unified_combine && options_.parallel_grouping &&
        pool.num_workers() > 0) {
      if (rt != nullptr) {
        pool.ParallelFor(machines, [&](uint32_t machine) {
          rt->RestoreInbox(machine, &workers[machine].inbox());
        });
      }
      parallel_group_ns += ParallelGroupInboxes(
          pool, std::span<Worker>(workers.data(), workers.size()), steal,
          collect_times);
      pool.ParallelFor(machines, prep_rest);
    } else {
      pool.ParallelFor(machines, prep_machine);
    }
    if (rt != nullptr) VCMP_RETURN_IF_ERROR(rt->ConsumeError());

    // --- Phase B: sharded compute kernels ---
    // runs() is the round's sparse frontier: only vertices with messages
    // appear, in ascending (target, tag) order. Each shard executes its
    // contiguous vertex range into its own arenas/logs; work stealing
    // only changes which thread runs a shard, never what the shard
    // writes.
    auto run_shard = [&](uint32_t task) {
      const uint32_t machine = task / shards_per_machine;
      const uint32_t shard = task % shards_per_machine;
      ShardSink& sink = *shard_sinks[task];
      sink.BeginRound(round);
      const ShardPlan& plan = plans[machine];
      const uint32_t begin = plan.bounds[shard];
      const uint32_t end = plan.bounds[shard + 1];
      if (round == 0) {
        const std::vector<VertexId>& vertices =
            vertices_by_machine_[machine];
        for (uint32_t i = begin; i < end; ++i) {
          sink.BeginVertex(vertices[i]);
          program.Compute(vertices[i], {}, sink);
        }
        return;
      }
      Worker& worker = workers[machine];
      const std::span<const MessageRun> runs = worker.runs();
      const double* values = worker.grouped_values();
      const double* mults = worker.grouped_multiplicities();
      if (use_runs) {
        // Devirtualized batch path: one ComputeRun per (vertex, tag)
        // run, payload handed over as contiguous columns. Same call
        // order a per-vertex Compute would fold the tag groups in.
        VertexId prev_target = 0;
        bool have_prev = false;
        for (uint32_t r = begin; r < end; ++r) {
          const MessageRun& run = runs[r];
          if (!have_prev || run.target != prev_target) {
            sink.BeginVertex(run.target);
            prev_target = run.target;
            have_prev = true;
          }
          MessageRunView view{run.tag, values + run.begin,
                              mults + run.begin, run.size()};
          program.ComputeRun(run.target, view, sink);
        }
      } else {
        // Fallback: the AoS view was materialized in phase A; hand each
        // vertex the multi-tag span the legacy Compute signature expects.
        const std::span<const Message> inbox = worker.MaterializedInbox();
        uint32_t r = begin;
        while (r < end) {
          uint32_t r_end = r + 1;
          while (r_end < end && runs[r_end].target == runs[r].target) {
            ++r_end;
          }
          const size_t first = runs[r].begin;
          const size_t last = runs[r_end - 1].end;
          sink.BeginVertex(runs[r].target);
          program.Compute(runs[r].target,
                          inbox.subspan(first, last - first), sink);
          r = r_end;
        }
      }
    };
    parallel_shards(num_shard_tasks, run_shard);

    // --- Phase C: canonical merge into worker outboxes ---
    // One task per (sender, destination) pair walks the sender's shard
    // arenas for that destination in ascending shard order — exactly the
    // sender's serial emission order — so combining folds, outbox bytes
    // and the destination's cross-in traffic are all independent of the
    // shard count.
    auto merge_pair = [&](uint32_t pair) {
      const uint32_t sender = pair / machines;
      const uint32_t dest = pair % machines;
      const uint64_t t0 = collect_times ? wallclock::NowNs() : 0;
      Worker& worker = workers[sender];
      MergeSlot& slot = merge_slots[pair];
      slot.Clear();
      MessageBlock& outbox = worker.outbox(dest);
      const uint32_t first_task = sender * shards_per_machine;
      double logical_in = 0.0;
      if (combiner != nullptr) {
        // Per-message fold through the sender's combining index, counting
        // created keys (integer wire units).
        const CombinerKind kind = worker.combiner_kind();
        double new_keys = 0.0;
        double wire_in = 0.0;
        // One amortized reservation sized by the arenas (an upper bound:
        // folds only shrink the outbox) replaces the per-PushBack growth
        // doublings that dominated stage time under contention.
        size_t arena_total = 0;
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          arena_total += shard_sinks[first_task + shard]->arena(dest).size();
        }
        outbox.Reserve(outbox.size() + arena_total);
        // The fold itself: first touch of a (target, tag) key appends to
        // the outbox; repeats fold in place. The dense variant performs
        // the identical appends and folds in the identical order — only
        // the key lookup differs — so the two paths produce the same
        // outbox bytes and the same counts.
        const auto fold = [&](VertexId target, uint32_t tag, double value,
                              double mult, size_t position, bool inserted) {
          if (inserted) {
            outbox.PushBack(target, tag, value, mult);
            new_keys += 1.0;
            if (dest != sender) wire_in += 1.0;
          } else {
            switch (kind) {
              case CombinerKind::kSum:
                outbox.values()[position] += value;
                outbox.multiplicities()[position] += mult;
                break;
              case CombinerKind::kMin:
                if (value < outbox.values()[position]) {
                  outbox.values()[position] = value;
                }
                outbox.multiplicities()[position] += mult;
                break;
              case CombinerKind::kCustom: {
                Message into = outbox.At(position);
                combiner->Merge(into, Message{target, tag, value, mult});
                outbox.Set(position, into);
                break;
              }
            }
          }
          if (dest != sender) logical_in += mult;
        };
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          const MessageBlock& arena =
              shard_sinks[first_task + shard]->arena(dest);
          const VertexId* targets = arena.targets();
          const uint32_t* tags = arena.tags();
          const double* values = arena.values();
          const double* mults = arena.multiplicities();
          const size_t n = arena.size();
          if (dense_combine) {
            // Direct-indexed lookup: one array read per message instead
            // of a hash probe chain.
            DenseCombineTable& table = scratch.dense_combine[pair];
            table.EnsureSlots(dense_slots[dest]);
            for (size_t i = 0; i < n; ++i) {
              assert(tags[i] < tag_universe &&
                     "program sent a tag outside its declared universe");
              const size_t key_slot =
                  static_cast<size_t>(local_index_[targets[i]]) *
                      tag_universe +
                  tags[i];
              const bool inserted = table.epoch[key_slot] != table.cur_epoch;
              if (inserted) {
                table.epoch[key_slot] = table.cur_epoch;
                table.position[key_slot] =
                    static_cast<uint32_t>(outbox.size());
              }
              fold(targets[i], tags[i], values[i], mults[i],
                   table.position[key_slot], inserted);
            }
          } else {
            CombineIndex& index = worker.combine_index(dest);
            for (size_t i = 0; i < n; ++i) {
              bool inserted = false;
              const uint64_t key =
                  (static_cast<uint64_t>(targets[i]) << 32) | tags[i];
              const size_t position =
                  index.FindOrInsert(key, outbox.size(), &inserted);
              fold(targets[i], tags[i], values[i], mults[i], position,
                   inserted);
            }
          }
        }
        slot.new_wire_keys = new_keys;
        slot.wire_cross_in = wire_in;
      } else if (mirror_plan_ != nullptr) {
        // Mirror mode: bulk append; cross-in folds the per-message
        // weights (1/0 for mirror first-touches, multiplicity for plain
        // sends from unmirrored vertices) in emission order.
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          const ShardSink& sink = *shard_sinks[first_task + shard];
          outbox.Append(sink.arena(dest));
          if (dest != sender) {
            for (double weight : sink.cross_weights(dest)) {
              logical_in += weight;
            }
          }
        }
        slot.wire_cross_in = logical_in;
      } else {
        // Plain mode: bulk column appends; wire == logical traffic.
        size_t total = 0;
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          total += shard_sinks[first_task + shard]->arena(dest).size();
        }
        outbox.Reserve(outbox.size() + total);
        for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
          const MessageBlock& arena =
              shard_sinks[first_task + shard]->arena(dest);
          outbox.Append(arena);
          if (dest != sender) {
            const double* mults = arena.multiplicities();
            const size_t n = arena.size();
            for (size_t i = 0; i < n; ++i) logical_in += mults[i];
          }
        }
        slot.wire_cross_in = logical_in;
      }
      slot.logical_cross_in = logical_in;
      if (collect_times) slot.merge_ns = wallclock::NowNs() - t0;
    };
    // Unified fold: one task per destination replaces that destination's
    // column of merge_pair tasks AND its delivery AND next round's
    // grouping. Folding senders in machine order, each sender's arenas in
    // shard order, is the exact FP operation sequence the receiver's
    // per-run fold would see over the raw grouped inbox (stable grouping
    // is sender-major), so task results are bit-identical to the
    // non-combining run at every thread and shard count.
    auto fold_dest = [&](uint32_t dest) {
      const uint64_t t0 = collect_times ? wallclock::NowNs() : 0;
      UnifiedCombineTable& table = scratch.unified_combine[dest];
      table.EnsureSlots(dense_slots[dest]);
      table.BeginFold();
      const uint32_t cur_epoch = table.cur_epoch;
      UnifiedCombineTable::Slot* const slots = table.slots.data();
      uint32_t* const block_epoch = table.block_epoch.data();
      MessageBlock& inbox = workers[dest].inbox();
      inbox.Clear();
      double wire_total = 0.0;
      size_t distinct = 0;
      // The arenas' target column holds destination slot indices (the
      // sinks store them under slot_targets), so the fold addresses its
      // table straight off the stream; the combine op is lifted out of
      // the loop as a template parameter so each kind gets a tight
      // specialised loop.
      auto fold_senders = [&](double identity, auto&& combine_op) {
        for (uint32_t sender = 0; sender < machines; ++sender) {
          MergeSlot& slot = merge_slots[sender * machines + dest];
          slot.Clear();
          size_t new_key_count = 0;
          double mult_sum = 0.0;
          const uint32_t first_task = sender * shards_per_machine;
          for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
            const MessageBlock& arena =
                shard_sinks[first_task + shard]->arena(dest);
            const VertexId* key_slots = arena.targets();
            const double* values = arena.values();
            const double* mults = arena.multiplicities();
            const size_t n = arena.size();
            // The table access is a random load; prefetching a fixed
            // distance ahead keeps several misses in flight at once. The
            // body is branchless — a first touch folds into the
            // combiner's identity element instead of taking a separate
            // store path, because the fresh/live mix is unpredictable in
            // sparse rounds and mispredicts would dominate the loop.
            constexpr size_t kFoldPrefetchDistance = 16;
            double mult_even = 0.0;
            double mult_odd = 0.0;
            const size_t prefetch_end =
                n > kFoldPrefetchDistance ? n - kFoldPrefetchDistance : 0;
            for (size_t i = 0; i < n; ++i) {
              if (i < prefetch_end) {
                __builtin_prefetch(
                    &slots[key_slots[i + kFoldPrefetchDistance]], 1, 1);
              }
              const size_t key_slot = key_slots[i];
              assert(key_slot < dense_slots[dest] &&
                     "program sent a tag outside its declared universe");
              UnifiedCombineTable::Slot& entry = slots[key_slot];
              const bool fresh = entry.epoch != cur_epoch;
              const double base_value = fresh ? identity : entry.value;
              const double base_mult = fresh ? 0.0 : entry.mult;
              const uint32_t prev_sender = entry.last_sender;
              entry.value = combine_op(base_value, values[i]);
              entry.mult = base_mult + mults[i];
              entry.epoch = cur_epoch;
              entry.last_sender = sender;
              block_epoch[key_slot >> UnifiedCombineTable::kBlockShift] =
                  cur_epoch;
              // A sender's first touch of a key — fresh or last touched
              // by an earlier sender — is one wire unit from that sender
              // (the per-pair path would have appended it to the
              // sender's outbox).
              new_key_count +=
                  static_cast<size_t>(fresh | (prev_sender != sender));
              distinct += static_cast<size_t>(fresh);
              if (i & 1) {
                mult_odd += mults[i];
              } else {
                mult_even += mults[i];
              }
            }
            mult_sum += mult_even + mult_odd;
          }
          const double new_keys = static_cast<double>(new_key_count);
          slot.new_wire_keys = new_keys;
          if (dest != sender) {
            slot.wire_cross_in = new_keys;
            slot.logical_cross_in = mult_sum;
          }
          wire_total += new_keys;
        }
      };
      const CombinerKind kind = workers[dest].combiner_kind();
      if (kind == CombinerKind::kMin) {
        fold_senders(std::numeric_limits<double>::infinity(),
                     [](double base, double value) {
                       return value < base ? value : base;
                     });
      } else {
        fold_senders(0.0,
                     [](double base, double value) { return base + value; });
      }
      unified_wire_in[dest] = wire_total;
      // Emit in ascending slot order — ascending (target, tag), since
      // local indices ascend with vertex ids — so the inbox arrives
      // pre-sorted and next round's GroupInbox takes its no-permutation
      // fast path. Blocks no fold entry marked are skipped wholesale.
      // One slot of slack: the branchless compaction below stores
      // unconditionally, so dead slots after the last live one write
      // (and a growth landing exactly on `distinct` would overflow)
      // one past the cursor.
      inbox.Reserve(distinct + 1);
      inbox.ResizeUninitialized(distinct);
      double* const out_values = inbox.values();
      double* const out_mults = inbox.multiplicities();
      // Every emitted key is distinct, so its run is a singleton; build
      // the runs here while target and tag are in registers and next
      // round's prep publishes them instead of re-deriving them from a
      // grouping scan. The runs are the round's only key source (the
      // Worker contract already routes consumers through runs()), so the
      // inbox's own target/tag columns stay unwritten — two dead store
      // streams fewer per key.
      std::vector<MessageRun>& runs = workers[dest].pregrouped_runs();
      runs.resize(distinct + 1);
      MessageRun* const out_runs = runs.data();
      size_t emitted = 0;
      const std::vector<VertexId>& locals = vertices_by_machine_[dest];
      const size_t total_slots = dense_slots[dest];
      constexpr size_t kBlockSlots =
          size_t{1} << UnifiedCombineTable::kBlockShift;
      for (size_t block = 0; block * kBlockSlots < total_slots; ++block) {
        if (block_epoch[block] != cur_epoch) continue;
        const size_t begin = block * kBlockSlots;
        const size_t end = std::min(begin + kBlockSlots, total_slots);
        size_t local = begin / tag_universe;
        uint32_t tag = static_cast<uint32_t>(begin % tag_universe);
        // Branchless compaction: store unconditionally, advance the
        // cursor only on live slots — the live/dead mix inside a touched
        // block is as unpredictable as the fold's.
        for (size_t s = begin; s < end; ++s) {
          const UnifiedCombineTable::Slot& entry = slots[s];
          out_values[emitted] = entry.value;
          out_mults[emitted] = entry.mult;
          out_runs[emitted] =
              MessageRun{locals[local], tag, static_cast<uint32_t>(emitted),
                         static_cast<uint32_t>(emitted) + 1};
          emitted += static_cast<size_t>(entry.epoch == cur_epoch);
          if (++tag == tag_universe) {
            tag = 0;
            ++local;
          }
        }
      }
      assert(emitted == distinct &&
             "emission must cover exactly the folded keys");
      (void)emitted;
      runs.resize(distinct);
      if (collect_times) {
        merge_slots[static_cast<size_t>(dest) * machines + dest].merge_ns =
            wallclock::NowNs() - t0;
      }
    };
    if (unified_combine) {
      pool.ParallelFor(machines, fold_dest);
    } else {
      parallel_shards(machines * machines, merge_pair);
    }

    // --- Phase D: fold per-vertex logs in vertex order ---
    // Shard s holds a contiguous vertex range, so concatenating the
    // machine's shard logs in shard order IS its vertex order: the fold
    // below performs the same FP add sequence at every shard count.
    auto finalize_machine = [&](uint32_t machine) {
      double units = 0.0;
      double aggregate = 0.0;
      bool aggregate_used = false;
      double residual = 0.0;
      double active = 0.0;
      double logical_sent = 0.0;
      double logical_cross = 0.0;
      double wire_sent = 0.0;
      double wire_cross = 0.0;
      const uint32_t first_task = machine * shards_per_machine;
      for (uint32_t shard = 0; shard < shards_per_machine; ++shard) {
        for (const ShardSink::VertexLog& rec :
             shard_sinks[first_task + shard]->log()) {
          units += rec.compute_units;
          aggregate += rec.aggregate;
          aggregate_used = aggregate_used || rec.aggregate_used;
          residual += rec.residual_bytes;
          logical_sent += rec.logical_sent;
          logical_cross += rec.logical_cross;
          wire_sent += rec.wire_sent;
          wire_cross += rec.wire_cross;
          active += 1.0;
        }
      }
      if (combiner != nullptr) {
        // Wire units under combining are the distinct keys the merge
        // created — integers, summed over destinations in fixed order.
        wire_sent = 0.0;
        wire_cross = 0.0;
        for (uint32_t dest = 0; dest < machines; ++dest) {
          const MergeSlot& slot = merge_slots[machine * machines + dest];
          wire_sent += slot.new_wire_keys;
          if (dest != machine) wire_cross += slot.new_wire_keys;
        }
      }
      WorkerSendStats& stats = workers[machine].send_stats();
      stats.logical_sent = logical_sent;
      stats.wire_sent = wire_sent;
      stats.wire_cross = wire_cross;
      stats.logical_cross = logical_cross;
      MachineRoundLoad& load = loads[machine];
      load.active_vertices = active;
      machine_units[machine] = units;
      machine_aggregate[machine] = aggregate;
      machine_aggregate_used[machine] = aggregate_used ? 1 : 0;
      machine_residual_round[machine] = residual;
    };
    pool.ParallelFor(machines, finalize_machine);
    if (collect_times) {
      result.phase.compute_seconds +=
          wallclock::SecondsSince(compute_start_ns);
      uint64_t merge_ns = 0;
      for (const MergeSlot& slot : merge_slots) merge_ns += slot.merge_ns;
      result.phase.stage_seconds += merge_ns * 1e-9;
    }
    double active_vertices_total = 0.0;
    for (const MachineRoundLoad& load : loads) {
      active_vertices_total += load.active_vertices;
    }

    // --- Assemble loads and price the round ---
    const double bytes_per_message = options_.profile.bytes_per_message;
    double round_extra_barriers = 0.0;
    for (uint32_t machine = 0; machine < machines; ++machine) {
      MachineRoundLoad& load = loads[machine];
      const WorkerSendStats& send = workers[machine].send_stats();
      load.cross_bytes_out = send.wire_cross * bytes_per_message * scale;
      double wire_cross_in = 0.0;
      for (uint32_t sender = 0; sender < machines; ++sender) {
        wire_cross_in +=
            merge_slots[sender * machines + machine].wire_cross_in;
      }
      load.cross_bytes_in = wire_cross_in * bytes_per_message * scale;
      double recv_wire_units =
          combining ? load.processed_messages : load.recv_messages;
      // A machine's message work is the larger of its receive and send
      // sides (serialization costs the sender as much as deserialization
      // costs the receiver); this prices seed supersteps, whose traffic
      // is all outbound. Sender-side combining does NOT reduce the work:
      // every logical message still passes through the combiner (it only
      // shrinks wire bytes and buffers).
      load.processed_messages =
          std::max(load.recv_messages, send.logical_sent);
      if (combining) {
        // Merged messages skip serialization/allocation; only the fold
        // remains. (combined_work_fraction defaults to 1.0, so flipping
        // sender_combining on under Pregel+ leaves compute pricing
        // untouched — the win shows up in wire bytes and buffers.)
        load.processed_messages *= options_.profile.combined_work_fraction;
      }
      // Receive buffers drain into compute while send buffers stream out:
      // the resident peak is the larger direction, not their sum.
      load.buffered_message_bytes =
          std::max(recv_wire_units, send.wire_sent) * bytes_per_message *
          scale;
      // Superstep splitting (Facebook Giraph): a message-heavy round is
      // chopped into sub-steps, capping the resident buffer at the
      // threshold; every extra sub-step costs one more barrier.
      double split_threshold =
          options_.profile.superstep_split_threshold_bytes;
      if (split_threshold > 0.0 &&
          load.buffered_message_bytes > split_threshold) {
        double sub_steps =
            std::ceil(load.buffered_message_bytes / split_threshold);
        round_extra_barriers =
            std::max(round_extra_barriers, sub_steps - 1.0);
        load.buffered_message_bytes = split_threshold;
      }
      load.sent_messages = send.logical_sent * scale;
      load.recv_messages *= scale;
      load.processed_messages *= scale;
      load.active_vertices *= scale;
      load.compute_units = machine_units[machine] * scale;
      load.state_bytes =
          (graph_share_bytes_[machine] + program.StateBytes(machine)) *
          scale;
      // Residual memory: the carryover from earlier batches, whatever the
      // program still reports itself, and the engine's ledger of
      // AddResidualBytes calls accumulated over this run's rounds.
      residual_ledger[machine] += machine_residual_round[machine];
      double carryover = options_.carryover_residual_bytes.empty()
                             ? 0.0
                             : options_.carryover_residual_bytes[machine];
      load.residual_bytes = (carryover + program.ResidualBytes(machine) +
                             residual_ledger[machine]) *
                            scale;
      if (rt != nullptr) {
        // Measured spill: what the stream actually restored this round,
        // expressed in the same paper-scale buffered-byte terms the
        // modeled recv-side overflow uses.
        load.measured_spill_bytes =
            static_cast<double>(rt->TakeRestoredMessages(machine)) *
            bytes_per_message * options_.profile.message_memory_overhead *
            scale;
        // Measured vertex-state streaming replaces the page-cache
        // heuristic below.
        load.measured_edge_stream_bytes =
            rt->TakeRoundStreamBytes(machine) * scale;
        size_t live_messages = workers[machine].inbox().size();
        for (uint32_t dest = 0; dest < machines; ++dest) {
          live_messages += workers[machine].OutboxSize(dest);
        }
        rt->NoteRoundLiveBytes(machine,
                               static_cast<double>(live_messages) *
                                   MessageBlock::kBytesPerMessage);
      }
    }

    double edge_stream_per_machine = 0.0;
    if (options_.profile.out_of_core && rt == nullptr) {
      for (double bytes : edge_stream_bytes_) {
        edge_stream_per_machine = std::max(edge_stream_per_machine, bytes);
      }
      // Edge partitions far smaller than memory live in the OS page cache
      // after the first round; only partitions that genuinely cannot stay
      // cached keep hitting the disk every round.
      if (edge_stream_per_machine * scale <
          0.25 * options_.cluster.machine.usable_memory_bytes) {
        edge_stream_per_machine = 0.0;
      }
      // The semi-streaming engine only streams adjacency lists that are
      // actually scanned this round; tasks report scans as compute units
      // (one per edge).
      double scanned_units = 0.0;
      for (uint32_t machine = 0; machine < machines; ++machine) {
        scanned_units += machine_units[machine];
      }
      double scanned_fraction =
          scanned_units > 0.0
              ? std::min(1.0, scanned_units /
                                  std::max<double>(graph_.NumEdges(), 1.0))
              : std::min(1.0, active_vertices_total /
                                  std::max<double>(graph_.NumVertices(), 1.0));
      edge_stream_per_machine *= scale * scanned_fraction;
    }
    RoundStats stats =
        cost_model_.EvaluateRound(loads, edge_stream_per_machine);
    stats.round = round;
    // Combine ratio: logical messages emitted vs. what actually hit the
    // wire/buffers this round. Plain runs fold the same two sequences and
    // report exactly 1.0; combining (and mirror wire dedup) report > 1.
    {
      double round_logical_sent = 0.0;
      double round_wire_sent = 0.0;
      for (const Worker& worker : workers) {
        const WorkerSendStats& send = worker.send_stats();
        round_logical_sent += send.logical_sent;
        round_wire_sent += send.wire_sent;
      }
      stats.wire_messages = round_wire_sent * scale;
      stats.combined_ratio = round_wire_sent > 0.0
                                 ? round_logical_sent / round_wire_sent
                                 : 1.0;
      result.total_logical_sent += round_logical_sent * scale;
      result.total_wire_messages += round_wire_sent * scale;
    }
    if (round_extra_barriers > 0.0) {
      double extra = round_extra_barriers * stats.barrier_seconds;
      stats.barrier_seconds += extra;
      stats.total_seconds += extra;
    }

    // --- Fault tolerance: checkpoints and injected failures ---
    double round_checkpoint_seconds = 0.0;
    double round_recovery_seconds = 0.0;
    if (options_.checkpoint_interval_rounds > 0 && round > 0 &&
        round % options_.checkpoint_interval_rounds == 0) {
      // Synchronous checkpoint: every machine flushes its resident data.
      double checkpoint_time = stats.max_memory_bytes /
                               options_.cluster.machine.disk_bandwidth;
      stats.total_seconds += checkpoint_time;
      result.checkpoint_seconds += checkpoint_time;
      round_checkpoint_seconds = checkpoint_time;
      ++result.checkpoints_taken;
      seconds_since_checkpoint = 0.0;
    }
    if (round == options_.inject_failure_at_round &&
        !result.failure_recovered) {
      // A machine dies: reload the last checkpoint (or restart) and
      // replay every round since. The replay re-executes the same
      // deterministic rounds, so its cost is the elapsed time since the
      // checkpoint plus the reload itself.
      double reload_time =
          options_.checkpoint_interval_rounds > 0
              ? stats.max_memory_bytes /
                    options_.cluster.machine.disk_bandwidth
              : 0.0;
      double replay_time = options_.checkpoint_interval_rounds > 0
                               ? seconds_since_checkpoint
                               : result.seconds;
      result.recovery_seconds = reload_time + replay_time;
      stats.total_seconds += result.recovery_seconds;
      round_recovery_seconds = result.recovery_seconds;
      result.failure_recovered = true;
    }
    seconds_since_checkpoint += stats.total_seconds;

    if (tracer != nullptr) {
      // The round partitions: the machines work (compute with
      // network/disk stalls overlapped), then the barrier, then any
      // checkpoint flush and failure recovery. Round boundaries are
      // anchored to the same running sum result.seconds uses, so round
      // starts are monotone by FP-addition monotonicity; the child
      // chain is clamped into [t0, t_end] so nesting survives the last
      // ulp of rounding. Per-phase maxima that do not form a timeline
      // (they come from different machines) travel as span args.
      const double t0 = options_.trace_time_offset_seconds + result.seconds;
      const double t_end = options_.trace_time_offset_seconds +
                           (result.seconds + stats.total_seconds);
      const double work = stats.total_seconds - stats.barrier_seconds -
                          round_checkpoint_seconds -
                          round_recovery_seconds;
      tracer->Begin(trace_track, "round", t0,
                    {{"round", static_cast<double>(round)},
                     {"messages", stats.messages},
                     {"message_bytes", stats.message_bytes},
                     {"cross_machine_bytes", stats.cross_machine_bytes},
                     {"active_vertices", stats.active_vertices}});
      double t = t0;
      auto child = [&](const char* name, double duration,
                       std::vector<TraceArg> args = {}) {
        tracer->Begin(trace_track, name, t, std::move(args));
        t = std::min(t + duration, t_end);
        tracer->End(trace_track, t);
      };
      // The compute child optionally nests one span per (machine, shard),
      // sized by the shard's staged messages — the same integer weights
      // at every thread count, so the subdivision is deterministic too.
      tracer->Begin(trace_track, "compute", t,
                    {{"max_compute_seconds", stats.compute_seconds},
                     {"network_stall_seconds", stats.network_seconds},
                     {"disk_stall_seconds", stats.disk_stall_seconds},
                     {"thrash_multiplier", stats.thrash_multiplier}});
      {
        const double compute_end = std::min(t + work, t_end);
        if (options_.trace_shard_spans) {
          shard_weights.assign(num_shard_tasks, 0.0);
          for (uint32_t task = 0; task < num_shard_tasks; ++task) {
            double staged = 0.0;
            for (uint32_t dest = 0; dest < machines; ++dest) {
              staged +=
                  static_cast<double>(shard_sinks[task]->arena(dest).size());
            }
            shard_weights[task] = staged;
          }
          obs::EmitShardSpans(*tracer, trace_track, t, compute_end - t,
                              shards_per_machine, shard_weights);
        }
        t = compute_end;
      }
      tracer->End(trace_track, t);
      child("barrier", stats.barrier_seconds);
      if (round_checkpoint_seconds > 0.0) {
        child("checkpoint", round_checkpoint_seconds);
      }
      if (round_recovery_seconds > 0.0) {
        child("recovery", round_recovery_seconds);
      }
      if (rt != nullptr && stats.spilled_bytes > 0.0) {
        // Real OOC only (non-OOC traces stay byte-identical): a marker
        // span inside the round carrying the measured spill traffic.
        // Its I/O time is already part of the compute child's disk
        // stalls, so the marker adds no duration of its own.
        child("ooc_spill", 0.0, {{"spilled_bytes", stats.spilled_bytes}});
      }
      tracer->End(trace_track, t_end);
      tracer->Gauge(trace_track, "memory_bytes", t_end,
                    stats.max_memory_bytes);
      tracer->Gauge(trace_track, "residual_bytes", t_end,
                    stats.max_residual_bytes);
      if (rt != nullptr) {
        tracer->Gauge(trace_track, "ooc_spilled_bytes", t_end,
                      stats.spilled_bytes);
      }
    }

    result.seconds += stats.total_seconds;
    result.total_messages += stats.messages;
    result.peak_memory_bytes =
        std::max(result.peak_memory_bytes, stats.max_memory_bytes);
    result.peak_residual_bytes =
        std::max(result.peak_residual_bytes, stats.max_residual_bytes);
    result.peak_buffered_bytes =
        std::max(result.peak_buffered_bytes, stats.max_buffered_bytes);
    result.network_overuse_seconds += stats.network_overuse_seconds;
    result.disk_overuse_seconds += stats.disk_overuse_seconds;
    result.disk_utilization += stats.disk_io_seconds;  // Normalised below.
    result.disk_saturated = result.disk_saturated || stats.disk_saturated;
    result.max_io_queue_length =
        std::max(result.max_io_queue_length, stats.io_queue_length);
    result.spilled_bytes += stats.spilled_bytes;
    result.rounds.push_back(stats);
    result.num_rounds = round + 1;

    if (stats.overflow || result.seconds > cutoff) {
      result.overloaded = true;
      if (options_.stop_early_on_overload) break;
    }

    // --- Deliver: drain all outboxes into next-round inboxes ---
    // Two passes, both sub-machine parallel in the common (non-OOC) case:
    // pass 1 (per destination) sizes the inbox as the fixed sender-major
    // concatenation and records each sender's slice offset; pass 2 (per
    // (sender, dest) pair) memcpys the disjoint column slices. The inbox
    // layout equals the serial sender-major drain byte for byte — only
    // who performs each copy changes. A destination fed by exactly one
    // sender (every single-machine cluster, and any quiet destination)
    // swaps buffers in pass 1 instead of copying.
    const uint64_t deliver_start_ns = wallclock::NowNs();
    if (unified_combine) {
      // The unified fold already wrote every destination's inbox; there
      // are no outboxes to move.
    } else if (rt == nullptr) {
      pool.ParallelFor(machines, [&](uint32_t dest) {
        MessageBlock& inbox = workers[dest].inbox();
        inbox.Clear();
        uint32_t nonempty_senders = 0;
        uint32_t solo_sender = 0;
        size_t total = 0;
        for (uint32_t sender = 0; sender < machines; ++sender) {
          deliver_offsets[static_cast<size_t>(sender) * machines + dest] =
              total;
          const size_t outbox_size = workers[sender].OutboxSize(dest);
          if (outbox_size != 0) {
            ++nonempty_senders;
            solo_sender = sender;
            total += outbox_size;
          }
        }
        deliver_copy[dest] = 0;
        if (nonempty_senders == 1) {
          workers[solo_sender].SwapOutbox(dest, &inbox);
        } else if (nonempty_senders > 1) {
          inbox.ResizeUninitialized(total);
          deliver_copy[dest] = 1;
        }
      });
      parallel_shards(machines * machines, [&](uint32_t pair) {
        const uint32_t dest = pair % machines;
        if (deliver_copy[dest] == 0) return;
        const uint32_t sender = pair / machines;
        MessageBlock& outbox = workers[sender].outbox(dest);
        if (outbox.empty()) return;
        workers[dest].inbox().WriteAt(deliver_offsets[pair], outbox);
        outbox.Clear();
        workers[sender].combine_index(dest).Clear();
      });
    } else {
      // OOC: the resident-message cap cuts the sender-major concatenation
      // at an arbitrary point, so delivery stays serial per destination.
      pool.ParallelFor(machines, [&workers, machines, rt](uint32_t dest) {
        MessageBlock& inbox = workers[dest].inbox();
        inbox.Clear();
        uint32_t nonempty_senders = 0;
        uint32_t solo_sender = 0;
        size_t total = 0;
        for (uint32_t sender = 0; sender < machines; ++sender) {
          const size_t outbox_size = workers[sender].OutboxSize(dest);
          if (outbox_size != 0) {
            ++nonempty_senders;
            solo_sender = sender;
            total += outbox_size;
          }
        }
        const size_t cap = static_cast<size_t>(rt->resident_message_cap());
        if (total > cap) {
          // Hard budget: keep the prefix of the sender-major concatenation
          // resident and page the suffix to the spill file. Exactly one
          // sender straddles the cut, so resident ++ restored reproduces
          // the uncapped inbox order byte for byte (and GroupInbox's
          // stable sort then folds identical payload orders).
          inbox.Reserve(cap);
          size_t kept = 0;
          for (uint32_t sender = 0; sender < machines; ++sender) {
            MessageBlock& outbox = workers[sender].outbox(dest);
            const size_t n = outbox.size();
            if (n == 0) continue;
            const size_t take = std::min(n, cap - kept);
            if (take > 0) {
              inbox.AppendColumns(outbox.targets(), outbox.tags(),
                                  outbox.values(), outbox.multiplicities(),
                                  take);
              kept += take;
            }
            if (take < n) {
              rt->SpillMessages(dest, outbox, take, n - take);
            }
            outbox.Clear();
            workers[sender].combine_index(dest).Clear();
          }
        } else if (nonempty_senders == 1) {
          workers[solo_sender].SwapOutbox(dest, &inbox);
        } else if (nonempty_senders > 1) {
          inbox.Reserve(total);
          for (uint32_t sender = 0; sender < machines; ++sender) {
            if (workers[sender].OutboxSize(dest) != 0) {
              workers[sender].Drain(dest, &inbox);
            }
          }
        }
        rt->FinishDeliverRound(dest);
      });
    }
    if (collect_times) {
      result.phase.deliver_seconds += wallclock::SecondsSince(deliver_start_ns);
    }
    // Every delivery branch above drains the outboxes and clears the
    // per-worker CombineIndexes; retire the dense tables' epochs in
    // lockstep (O(1) per table).
    for (DenseCombineTable& table : scratch.dense_combine) table.Clear();
    if (rt != nullptr) VCMP_RETURN_IF_ERROR(rt->ConsumeError());
    for (uint32_t machine = 0; machine < machines; ++machine) {
      if (!workers[machine].inbox().empty() ||
          (rt != nullptr && rt->has_pending_spill(machine))) {
        any_messages_pending = true;
      }
    }
    if (!any_messages_pending) break;  // Quiescence: vote-to-halt.
    if (program.ShouldTerminate(round + 1)) break;
    bool aggregate_used = false;
    double aggregate_sum = 0.0;
    for (uint32_t machine = 0; machine < machines; ++machine) {
      aggregate_used = aggregate_used || machine_aggregate_used[machine];
      aggregate_sum += machine_aggregate[machine];
    }
    if (aggregate_used && program.TerminateOnAggregate(aggregate_sum)) {
      break;
    }
    if (rt != nullptr) {
      // The loop will run another round: queue its sections (from the
      // resident inbox targets — a subset of next round's needed set)
      // and kick off one background read job per machine. The barrier
      // at the top of the next iteration publishes the staged buffers.
      for (uint32_t machine = 0; machine < machines; ++machine) {
        rt->SchedulePrefetch(machine, workers[machine].inbox());
      }
      rt->LaunchPrefetch(&pool);
    }
  }

  result.residual_bytes_per_machine = residual_ledger;

  if (rt != nullptr) {
    // Drain any prefetch jobs a terminal break left in flight before
    // reading the runtime's counters (or letting it be destroyed).
    rt->WaitPrefetch();
    VCMP_RETURN_IF_ERROR(rt->ConsumeError());
    result.ooc_active = true;
    result.ooc = rt->run_stats();
  }

  if (result.seconds > 0.0) {
    result.disk_utilization =
        std::min(1.0, result.disk_utilization / result.seconds);
  }
  if (result.overloaded) {
    result.seconds = std::max(result.seconds, cutoff);
  }
  if (collect_times) {
    for (const Worker& worker : workers) {
      result.phase.group_seconds += worker.group_ns() * 1e-9;
    }
    // Lockstep grouping bypasses the per-worker timers (one wall clock
    // around the whole fan-out instead), so this is an add, not overlap.
    result.phase.group_seconds += parallel_group_ns * 1e-9;
  }
  if (tracer != nullptr) {
    // One Add per run, mirroring RunReport::Absorb's per-batch
    // accumulation so the flat counters reconcile bitwise with the
    // report totals (per-round adds would associate differently).
    tracer->Add("engine.messages", result.total_messages);
    tracer->Add("engine.rounds", static_cast<double>(result.num_rounds));
    tracer->Add("engine.seconds", result.seconds);
    tracer->Add("engine.checkpoint_seconds", result.checkpoint_seconds);
    tracer->Add("engine.checkpoints",
                static_cast<double>(result.checkpoints_taken));
    tracer->Peak("engine.peak_memory_bytes", result.peak_memory_bytes);
    tracer->Peak("engine.peak_residual_bytes",
                 result.peak_residual_bytes);
    tracer->Peak("engine.peak_buffered_bytes",
                 result.peak_buffered_bytes);
    if (mirror_plan_ != nullptr) {
      tracer->Peak("engine.mirrors",
                   static_cast<double>(mirror_plan_->TotalMirrors()));
    }
    if (result.ooc_active) {
      tracer->Add("engine.ooc.spilled_bytes", result.spilled_bytes);
      tracer->Add("engine.ooc.spill_bytes_written",
                  result.ooc.spill_bytes_written);
      tracer->Add("engine.ooc.spill_bytes_read",
                  result.ooc.spill_bytes_read);
      tracer->Add("engine.ooc.state_bytes_read",
                  result.ooc.state_bytes_read);
      tracer->Add("engine.ooc.cache_hits",
                  static_cast<double>(result.ooc.cache_hits));
      tracer->Add("engine.ooc.cache_misses",
                  static_cast<double>(result.ooc.cache_misses));
      tracer->Add("engine.ooc.prefetch_loads",
                  static_cast<double>(result.ooc.prefetch_loads));
      tracer->Peak("engine.ooc.peak_live_bytes",
                   result.ooc.peak_live_bytes);
    }
  }
  return result;
}

}  // namespace vcmp
