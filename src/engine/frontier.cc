#include "engine/frontier.h"

#include <algorithm>

namespace vcmp {

void VertexFrontier::Reset(VertexId universe) {
  universe_ = universe;
  words_.assign((static_cast<size_t>(universe) + 63) / 64, 0);
  pending_.clear();
  active_count_ = 0;
}

void VertexFrontier::Clear() {
  if (active_count_ > 0) {
    if (active_count_ * 100 >= static_cast<size_t>(universe_) *
                                   kDenseClearPercent) {
      std::fill(words_.begin(), words_.end(), 0);
    } else {
      size_t cleared = 0;
      for (VertexId v : pending_) {
        const uint64_t mask = uint64_t{1} << (v & 63);
        uint64_t& word = words_[v >> 6];
        if ((word & mask) != 0) {
          word &= ~mask;
          ++cleared;
        }
      }
      // Vertices taken but never deactivated are no longer in the
      // pending list; if any such bits survive, wipe densely.
      if (cleared != active_count_) {
        std::fill(words_.begin(), words_.end(), 0);
      }
    }
  }
  pending_.clear();
  active_count_ = 0;
}

}  // namespace vcmp
