#include "engine/message_block.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace vcmp {

namespace {
/// Smallest non-empty allocation; below this the growth doublings would
/// churn tiny arrays for every first-round message.
constexpr size_t kMinCapacity = 64;
}  // namespace

void MessageBlock::Grow(size_t need) {
  size_t capacity = std::max(capacity_ * 2, kMinCapacity);
  while (capacity < need) capacity *= 2;

  auto targets = std::make_unique<VertexId[]>(capacity);
  auto tags = std::make_unique<uint32_t[]>(capacity);
  auto values = std::make_unique<double[]>(capacity);
  auto multiplicities = std::make_unique<double[]>(capacity);
  if (size_ > 0) {
    std::memcpy(targets.get(), targets_.get(), size_ * sizeof(VertexId));
    std::memcpy(tags.get(), tags_.get(), size_ * sizeof(uint32_t));
    std::memcpy(values.get(), values_.get(), size_ * sizeof(double));
    std::memcpy(multiplicities.get(), multiplicities_.get(),
                size_ * sizeof(double));
  }
  targets_ = std::move(targets);
  tags_ = std::move(tags);
  values_ = std::move(values);
  multiplicities_ = std::move(multiplicities);
  capacity_ = capacity;
}

void MessageBlock::Append(const MessageBlock& other) {
  if (other.size_ == 0) return;
  Reserve(size_ + other.size_);
  std::memcpy(targets_.get() + size_, other.targets_.get(),
              other.size_ * sizeof(VertexId));
  std::memcpy(tags_.get() + size_, other.tags_.get(),
              other.size_ * sizeof(uint32_t));
  std::memcpy(values_.get() + size_, other.values_.get(),
              other.size_ * sizeof(double));
  std::memcpy(multiplicities_.get() + size_, other.multiplicities_.get(),
              other.size_ * sizeof(double));
  size_ += other.size_;
}

void MessageBlock::AppendColumns(const VertexId* targets,
                                 const uint32_t* tags, const double* values,
                                 const double* multiplicities, size_t n) {
  if (n == 0) return;
  Reserve(size_ + n);
  std::memcpy(targets_.get() + size_, targets, n * sizeof(VertexId));
  std::memcpy(tags_.get() + size_, tags, n * sizeof(uint32_t));
  std::memcpy(values_.get() + size_, values, n * sizeof(double));
  std::memcpy(multiplicities_.get() + size_, multiplicities,
              n * sizeof(double));
  size_ += n;
}

void MessageBlock::WriteAt(size_t offset, const MessageBlock& other) {
  if (other.size_ == 0) return;
  std::memcpy(targets_.get() + offset, other.targets_.get(),
              other.size_ * sizeof(VertexId));
  std::memcpy(tags_.get() + offset, other.tags_.get(),
              other.size_ * sizeof(uint32_t));
  std::memcpy(values_.get() + offset, other.values_.get(),
              other.size_ * sizeof(double));
  std::memcpy(multiplicities_.get() + offset, other.multiplicities_.get(),
              other.size_ * sizeof(double));
}

void MessageBlock::EraseFront(size_t n) {
  if (n == 0) return;
  if (n >= size_) {
    size_ = 0;
    return;
  }
  const size_t remaining = size_ - n;
  std::memmove(targets_.get(), targets_.get() + n,
               remaining * sizeof(VertexId));
  std::memmove(tags_.get(), tags_.get() + n, remaining * sizeof(uint32_t));
  std::memmove(values_.get(), values_.get() + n, remaining * sizeof(double));
  std::memmove(multiplicities_.get(), multiplicities_.get() + n,
               remaining * sizeof(double));
  size_ = remaining;
}

void MessageBlock::Swap(MessageBlock& other) noexcept {
  targets_.swap(other.targets_);
  tags_.swap(other.tags_);
  values_.swap(other.values_);
  multiplicities_.swap(other.multiplicities_);
  std::swap(size_, other.size_);
  std::swap(capacity_, other.capacity_);
}

}  // namespace vcmp
