#include "engine/message.h"

#include "common/string_util.h"

namespace vcmp {

std::string Message::ToString() const {
  return StrFormat("Message(target=%u, tag=%u, value=%g, mult=%g)", target,
                   tag, value, multiplicity);
}

}  // namespace vcmp
