#ifndef VCMP_ENGINE_MESSAGE_H_
#define VCMP_ENGINE_MESSAGE_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace vcmp {

/// One physical message routed between vertices.
///
/// `multiplicity` makes the message *logical-count aware*: a physical
/// message standing for k paper-level messages (e.g. k random walks taking
/// the same step, or a sampled MSSP source representing k real sources)
/// carries multiplicity k. All congestion/memory/network statistics count
/// logical units, so the simulated cluster sees exactly the traffic the
/// real system would, while the process routes far fewer objects.
struct Message {
  VertexId target = 0;
  /// Task-defined discriminator (e.g. source vertex of a walk or query).
  /// Messages with equal (target, tag) may be merged by a Combiner.
  uint32_t tag = 0;
  /// Task payload (walk count, path length, rank mass, ...).
  double value = 0.0;
  /// Number of paper-level messages this physical message represents.
  double multiplicity = 1.0;

  std::string ToString() const;
};

/// Merge strategy discriminator so the staging hot path can inline the
/// two ubiquitous folds (sum, min) instead of paying a virtual Merge
/// call per staged message. kCustom keeps the virtual dispatch.
enum class CombinerKind : uint8_t {
  kCustom = 0,
  kSum,
  kMin,
};

/// Sender-side combining of messages with equal (target, tag), the
/// mechanism behind Pregel combiners and GraphLab(sync)'s message merging
/// (Section 4.8). Merging never changes the logical multiplicity — only
/// the number of wire messages.
class Combiner {
 public:
  virtual ~Combiner() = default;

  /// Folds `from` into `into`; both have equal (target, tag). The
  /// implementation must add multiplicities.
  virtual void Merge(Message& into, const Message& from) const = 0;

  /// Which inlinable fold this combiner performs. Overriding with kSum /
  /// kMin promises Merge is exactly the corresponding fold below; the
  /// engine then bypasses the virtual call on the staging path.
  virtual CombinerKind kind() const { return CombinerKind::kCustom; }

  /// Promise that Merge is a bitwise-associative fold over the value and
  /// multiplicity streams this task actually emits, i.e. folding any
  /// contiguous segmentation of an emission-order message sequence and then
  /// folding the segment results in order yields bit-identical Messages to
  /// one left-to-right fold. This is what lets the engine pre-combine inside
  /// each compute shard (DESIGN.md §16): min-folds qualify (the result is
  /// always an operand; ties keep the earlier message), and sums qualify only
  /// when every partial sum is exact (integer-valued counts below 2^53).
  /// General FP sums must return false — reassociation changes rounding and
  /// would break the engine's bit-identity contract across shard counts.
  virtual bool exact_fold() const { return false; }
};

/// Combiner that sums values (walk counts, rank mass).
///
/// `exact` asserts the task only ever sums values whose partial sums are
/// exact in double precision (walk counts, hop counters) so the fold may be
/// reassociated; leave it false for real-valued mass (PageRank rank).
class SumCombiner : public Combiner {
 public:
  SumCombiner() = default;
  explicit SumCombiner(bool exact) : exact_(exact) {}

  void Merge(Message& into, const Message& from) const override {
    into.value += from.value;
    into.multiplicity += from.multiplicity;
  }
  CombinerKind kind() const override { return CombinerKind::kSum; }
  bool exact_fold() const override { return exact_; }

 private:
  bool exact_ = false;
};

/// Combiner that keeps the minimum value (shortest-path distances).
/// The strict `<` keeps the earlier message on ties (including ±0.0), which
/// makes the value fold associative (the result is always an operand; tasks
/// must not send NaN). `exact` additionally asserts the *multiplicity*
/// stream sums exactly (e.g. integer extrapolation factors), which the
/// min-fold needs too because Merge adds multiplicities.
class MinCombiner : public Combiner {
 public:
  MinCombiner() = default;
  explicit MinCombiner(bool exact) : exact_(exact) {}

  void Merge(Message& into, const Message& from) const override {
    if (from.value < into.value) into.value = from.value;
    into.multiplicity += from.multiplicity;
  }
  CombinerKind kind() const override { return CombinerKind::kMin; }
  bool exact_fold() const override { return exact_; }

 private:
  bool exact_ = false;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_MESSAGE_H_
