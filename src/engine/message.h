#ifndef VCMP_ENGINE_MESSAGE_H_
#define VCMP_ENGINE_MESSAGE_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace vcmp {

/// One physical message routed between vertices.
///
/// `multiplicity` makes the message *logical-count aware*: a physical
/// message standing for k paper-level messages (e.g. k random walks taking
/// the same step, or a sampled MSSP source representing k real sources)
/// carries multiplicity k. All congestion/memory/network statistics count
/// logical units, so the simulated cluster sees exactly the traffic the
/// real system would, while the process routes far fewer objects.
struct Message {
  VertexId target = 0;
  /// Task-defined discriminator (e.g. source vertex of a walk or query).
  /// Messages with equal (target, tag) may be merged by a Combiner.
  uint32_t tag = 0;
  /// Task payload (walk count, path length, rank mass, ...).
  double value = 0.0;
  /// Number of paper-level messages this physical message represents.
  double multiplicity = 1.0;

  std::string ToString() const;
};

/// Sender-side combining of messages with equal (target, tag), the
/// mechanism behind Pregel combiners and GraphLab(sync)'s message merging
/// (Section 4.8). Merging never changes the logical multiplicity — only
/// the number of wire messages.
class Combiner {
 public:
  virtual ~Combiner() = default;

  /// Folds `from` into `into`; both have equal (target, tag). The
  /// implementation must add multiplicities.
  virtual void Merge(Message& into, const Message& from) const = 0;
};

/// Combiner that sums values (walk counts, rank mass).
class SumCombiner : public Combiner {
 public:
  void Merge(Message& into, const Message& from) const override {
    into.value += from.value;
    into.multiplicity += from.multiplicity;
  }
};

/// Combiner that keeps the minimum value (shortest-path distances).
class MinCombiner : public Combiner {
 public:
  void Merge(Message& into, const Message& from) const override {
    if (from.value < into.value) into.value = from.value;
    into.multiplicity += from.multiplicity;
  }
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_MESSAGE_H_
