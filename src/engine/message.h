#ifndef VCMP_ENGINE_MESSAGE_H_
#define VCMP_ENGINE_MESSAGE_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace vcmp {

/// One physical message routed between vertices.
///
/// `multiplicity` makes the message *logical-count aware*: a physical
/// message standing for k paper-level messages (e.g. k random walks taking
/// the same step, or a sampled MSSP source representing k real sources)
/// carries multiplicity k. All congestion/memory/network statistics count
/// logical units, so the simulated cluster sees exactly the traffic the
/// real system would, while the process routes far fewer objects.
struct Message {
  VertexId target = 0;
  /// Task-defined discriminator (e.g. source vertex of a walk or query).
  /// Messages with equal (target, tag) may be merged by a Combiner.
  uint32_t tag = 0;
  /// Task payload (walk count, path length, rank mass, ...).
  double value = 0.0;
  /// Number of paper-level messages this physical message represents.
  double multiplicity = 1.0;

  std::string ToString() const;
};

/// Merge strategy discriminator so the staging hot path can inline the
/// two ubiquitous folds (sum, min) instead of paying a virtual Merge
/// call per staged message. kCustom keeps the virtual dispatch.
enum class CombinerKind : uint8_t {
  kCustom = 0,
  kSum,
  kMin,
};

/// Sender-side combining of messages with equal (target, tag), the
/// mechanism behind Pregel combiners and GraphLab(sync)'s message merging
/// (Section 4.8). Merging never changes the logical multiplicity — only
/// the number of wire messages.
class Combiner {
 public:
  virtual ~Combiner() = default;

  /// Folds `from` into `into`; both have equal (target, tag). The
  /// implementation must add multiplicities.
  virtual void Merge(Message& into, const Message& from) const = 0;

  /// Which inlinable fold this combiner performs. Overriding with kSum /
  /// kMin promises Merge is exactly the corresponding fold below; the
  /// engine then bypasses the virtual call on the staging path.
  virtual CombinerKind kind() const { return CombinerKind::kCustom; }
};

/// Combiner that sums values (walk counts, rank mass).
class SumCombiner : public Combiner {
 public:
  void Merge(Message& into, const Message& from) const override {
    into.value += from.value;
    into.multiplicity += from.multiplicity;
  }
  CombinerKind kind() const override { return CombinerKind::kSum; }
};

/// Combiner that keeps the minimum value (shortest-path distances).
class MinCombiner : public Combiner {
 public:
  void Merge(Message& into, const Message& from) const override {
    if (from.value < into.value) into.value = from.value;
    into.multiplicity += from.multiplicity;
  }
  CombinerKind kind() const override { return CombinerKind::kMin; }
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_MESSAGE_H_
