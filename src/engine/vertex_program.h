#ifndef VCMP_ENGINE_VERTEX_PROGRAM_H_
#define VCMP_ENGINE_VERTEX_PROGRAM_H_

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "engine/message.h"
#include "graph/graph.h"

namespace vcmp {

/// Messaging interface handed to VertexProgram::Compute. Implemented by the
/// engines; routes messages, applies combining, and accounts statistics.
class MessageSink {
 public:
  virtual ~MessageSink() = default;

  /// Sends to a specific vertex. Illegal under the mirror/broadcast-only
  /// interface (Pregel+(mirror) only exposes Broadcast, Section 3).
  virtual void Send(VertexId target, uint32_t tag, double value,
                    double multiplicity) = 0;

  /// Delivers (tag, value, multiplicity-per-neighbour) to every neighbour
  /// of `from`. Under mirroring, one wire message per mirror machine; in
  /// basic engines this expands to per-neighbour sends.
  virtual void Broadcast(VertexId from, uint32_t tag, double value,
                         double multiplicity_per_neighbor) = 0;

  /// Declares extra modelled compute (in edge-scan units) that does not
  /// emit one message per unit, e.g. scanning an adjacency list.
  virtual void AddComputeUnits(double units) = 0;

  /// Contributes to the round's global sum aggregator (the Pregel
  /// aggregator mechanism). The engine folds all contributions during the
  /// round and hands the total to VertexProgram::TerminateOnAggregate
  /// after the round's barrier.
  virtual void Aggregate(double value) = 0;

  /// Records bytes of intermediate results produced at the current vertex
  /// that must survive until final aggregation (the paper's residual
  /// memory). The engine accumulates these into a per-machine ledger and
  /// reports them in the result, so programs need no shared per-machine
  /// arrays of their own — which would race once vertices of one machine
  /// execute on different shards. Sinks that do not model memory ignore it.
  virtual void AddResidualBytes(double bytes) { (void)bytes; }

  /// Current communication round (0 = the seeding superstep).
  virtual uint64_t round() const = 0;

  /// Deterministic per-run random stream.
  virtual Rng& rng() = 0;
};

/// One contiguous (vertex, tag) message run, straight out of the
/// worker's grouped SoA columns. `values[i]` / `multiplicities[i]` for
/// i in [0, count) are the run's messages in the engine's deterministic
/// grouping order (stable by arrival).
struct MessageRunView {
  uint32_t tag = 0;
  const double* values = nullptr;
  const double* multiplicities = nullptr;
  size_t count = 0;

  /// Left-to-right sum of the run's values — the fold most tasks
  /// (PageRank, BPPR walk counts) perform per tag group.
  double SumValues() const {
    double sum = 0.0;
    for (size_t i = 0; i < count; ++i) sum += values[i];
    return sum;
  }
};

/// A vertex-centric computation in the Pregel style (Section 2.1).
///
/// Round 0 calls Compute for every vertex with an empty inbox (the seeding
/// superstep). In later rounds, Compute runs only for vertices that
/// received messages — the vote-to-halt default. The engine terminates
/// when a round sends no messages, when the program requests termination,
/// or at the round cap.
///
/// Programs may additionally opt into the batched run path (UsesComputeRun
/// returning true): rounds >= 1 then call ComputeRun once per contiguous
/// (vertex, tag) run instead of Compute once per vertex with an AoS span.
/// The determinism contract for an opted-in program is that the sequence
/// of sink calls and RNG draws it makes across the round's runs is
/// *identical* to what its Compute would make over the same grouped
/// inbox — the engine delivers runs in exactly the (target, tag) order
/// Compute's span would present, so a program whose Compute folds each
/// tag group independently (all of ours do) ports mechanically.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// The per-vertex user function. `inbox` holds this round's messages for
  /// v, grouped by the engine (empty in round 0). Round 0 always uses this
  /// entry point; later rounds use it when UsesComputeRun() is false.
  virtual void Compute(VertexId v, std::span<const Message> inbox,
                       MessageSink& sink) = 0;

  /// True if the program implements ComputeRun; the engine then skips the
  /// AoS inbox materialization entirely.
  virtual bool UsesComputeRun() const { return false; }

  /// Batched entry point: one call per (v, tag) run in ascending
  /// (target, tag) order. Default is unreachable (engines only call it
  /// when UsesComputeRun() is true).
  virtual void ComputeRun(VertexId v, const MessageRunView& run,
                          MessageSink& sink) {
    (void)v;
    (void)run;
    (void)sink;
  }

  /// Explicit termination check evaluated after each round, for programs
  /// with round-count semantics (e.g. BKHS stops after k+1 rounds).
  virtual bool ShouldTerminate(uint64_t rounds_completed) const {
    (void)rounds_completed;
    return false;
  }

  /// Convergence check on the round's global aggregator sum (e.g.
  /// PageRank terminates when the summed rank delta drops below a
  /// tolerance). Only called for rounds where at least one vertex
  /// aggregated a value.
  virtual bool TerminateOnAggregate(double aggregate_sum) const {
    (void)aggregate_sum;
    return false;
  }

  /// Bytes of vertex state held on `machine` (generated-graph scale; the
  /// engine applies the dataset scale factor).
  virtual double StateBytes(uint32_t machine) const {
    (void)machine;
    return 0.0;
  }

  /// Bytes of intermediate results on `machine` that must survive until
  /// final aggregation — the paper's residual memory. Grows as the batch
  /// progresses (e.g. terminated-walk records).
  virtual double ResidualBytes(uint32_t machine) const {
    (void)machine;
    return 0.0;
  }

  /// Sender-side combiner, or nullptr when messages must not be merged.
  virtual const Combiner* combiner() const { return nullptr; }

  /// Upper bound on the tag values this program ever sends: every tag is
  /// in [0, combine_tag_universe()), or 0 when tags are unbounded /
  /// unknown (e.g. tags carrying raw vertex ids). A small dense universe
  /// lets combining engines replace the hash-probe combine index with a
  /// direct-indexed table over (local vertex, tag) — the same first-touch
  /// fold, minus the probing.
  virtual uint32_t combine_tag_universe() const { return 0; }
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_VERTEX_PROGRAM_H_
