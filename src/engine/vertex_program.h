#ifndef VCMP_ENGINE_VERTEX_PROGRAM_H_
#define VCMP_ENGINE_VERTEX_PROGRAM_H_

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "engine/message.h"
#include "graph/graph.h"

namespace vcmp {

/// Messaging interface handed to VertexProgram::Compute. Implemented by the
/// engines; routes messages, applies combining, and accounts statistics.
class MessageSink {
 public:
  virtual ~MessageSink() = default;

  /// Sends to a specific vertex. Illegal under the mirror/broadcast-only
  /// interface (Pregel+(mirror) only exposes Broadcast, Section 3).
  virtual void Send(VertexId target, uint32_t tag, double value,
                    double multiplicity) = 0;

  /// Delivers (tag, value, multiplicity-per-neighbour) to every neighbour
  /// of `from`. Under mirroring, one wire message per mirror machine; in
  /// basic engines this expands to per-neighbour sends.
  virtual void Broadcast(VertexId from, uint32_t tag, double value,
                         double multiplicity_per_neighbor) = 0;

  /// Declares extra modelled compute (in edge-scan units) that does not
  /// emit one message per unit, e.g. scanning an adjacency list.
  virtual void AddComputeUnits(double units) = 0;

  /// Contributes to the round's global sum aggregator (the Pregel
  /// aggregator mechanism). The engine folds all contributions during the
  /// round and hands the total to VertexProgram::TerminateOnAggregate
  /// after the round's barrier.
  virtual void Aggregate(double value) = 0;

  /// Current communication round (0 = the seeding superstep).
  virtual uint64_t round() const = 0;

  /// Deterministic per-run random stream.
  virtual Rng& rng() = 0;
};

/// A vertex-centric computation in the Pregel style (Section 2.1).
///
/// Round 0 calls Compute for every vertex with an empty inbox (the seeding
/// superstep). In later rounds, Compute runs only for vertices that
/// received messages — the vote-to-halt default. The engine terminates
/// when a round sends no messages, when the program requests termination,
/// or at the round cap.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// The per-vertex user function. `inbox` holds this round's messages for
  /// v, grouped by the engine (empty in round 0).
  virtual void Compute(VertexId v, std::span<const Message> inbox,
                       MessageSink& sink) = 0;

  /// Explicit termination check evaluated after each round, for programs
  /// with round-count semantics (e.g. BKHS stops after k+1 rounds).
  virtual bool ShouldTerminate(uint64_t rounds_completed) const {
    (void)rounds_completed;
    return false;
  }

  /// Convergence check on the round's global aggregator sum (e.g.
  /// PageRank terminates when the summed rank delta drops below a
  /// tolerance). Only called for rounds where at least one vertex
  /// aggregated a value.
  virtual bool TerminateOnAggregate(double aggregate_sum) const {
    (void)aggregate_sum;
    return false;
  }

  /// Bytes of vertex state held on `machine` (generated-graph scale; the
  /// engine applies the dataset scale factor).
  virtual double StateBytes(uint32_t machine) const {
    (void)machine;
    return 0.0;
  }

  /// Bytes of intermediate results on `machine` that must survive until
  /// final aggregation — the paper's residual memory. Grows as the batch
  /// progresses (e.g. terminated-walk records).
  virtual double ResidualBytes(uint32_t machine) const {
    (void)machine;
    return 0.0;
  }

  /// Sender-side combiner, or nullptr when messages must not be merged.
  virtual const Combiner* combiner() const { return nullptr; }
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_VERTEX_PROGRAM_H_
