#ifndef VCMP_ENGINE_MIRROR_ENGINE_H_
#define VCMP_ENGINE_MIRROR_ENGINE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"

namespace vcmp {

/// Mirroring tables for Pregel+(mirror) (Section 2.2).
///
/// A mirror is created for each high-degree vertex v on every other machine
/// that contains at least one neighbour of v; v's adjacency list is
/// partitioned among the mirrors. Forwarding a broadcast then costs one
/// wire message per mirror machine instead of one per neighbour, removing
/// the communication skew of power-law graphs.
class MirrorPlan {
 public:
  /// Builds the plan: vertices with degree > `degree_threshold` get
  /// mirrors on the machines holding their neighbours.
  MirrorPlan(const Graph& graph, const Partitioning& partition,
             uint64_t degree_threshold);

  bool IsMirrored(VertexId v) const { return mirrored_[v]; }

  /// Number of machines other than v's home holding >= 1 neighbour of v
  /// (i.e. wire messages per broadcast for a mirrored vertex).
  uint32_t RemoteMirrorMachines(VertexId v) const {
    return remote_machines_[v];
  }

  /// Total mirrors created across the cluster.
  uint64_t TotalMirrors() const { return total_mirrors_; }

  /// Extra per-machine memory for mirror adjacency sublists, in bytes at
  /// generated-graph scale (spread uniformly for accounting).
  double MirrorStateBytesPerMachine() const {
    return mirror_state_bytes_per_machine_;
  }

  uint64_t degree_threshold() const { return degree_threshold_; }

 private:
  uint64_t degree_threshold_;
  std::vector<bool> mirrored_;
  std::vector<uint32_t> remote_machines_;
  uint64_t total_mirrors_ = 0;
  double mirror_state_bytes_per_machine_ = 0.0;
};

}  // namespace vcmp

#endif  // VCMP_ENGINE_MIRROR_ENGINE_H_
