#include "engine/worker.h"

#include <algorithm>

namespace vcmp {

void Worker::Reset(uint32_t num_machines) {
  outboxes_.assign(num_machines, {});
  combine_index_.assign(num_machines, {});
  inbox_.clear();
  send_stats_.Clear();
}

bool Worker::Stage(uint32_t target_machine, const Message& message,
                   const Combiner* combiner) {
  auto& outbox = outboxes_[target_machine];
  if (combiner != nullptr) {
    uint64_t key =
        (static_cast<uint64_t>(message.target) << 32) | message.tag;
    auto& index = combine_index_[target_machine];
    auto [it, inserted] = index.try_emplace(key, outbox.size());
    if (!inserted) {
      combiner->Merge(outbox[it->second], message);
      return false;  // Merged: no new wire message.
    }
  }
  outbox.push_back(message);
  return true;
}

void Worker::Drain(uint32_t machine, std::vector<Message>* dest) {
  auto& outbox = outboxes_[machine];
  dest->insert(dest->end(), outbox.begin(), outbox.end());
  outbox.clear();
  combine_index_[machine].clear();
}

void Worker::GroupInbox() {
  std::sort(inbox_.begin(), inbox_.end(),
            [](const Message& a, const Message& b) {
              if (a.target != b.target) return a.target < b.target;
              return a.tag < b.tag;
            });
}

}  // namespace vcmp
