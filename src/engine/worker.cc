#include "engine/worker.h"

#include <algorithm>
#include <array>

#include "common/wall_clock.h"

namespace vcmp {
namespace {

/// Packed sort/combine key: target in the high half, tag in the low half.
inline uint64_t KeyOf(const Message& message) {
  return (static_cast<uint64_t>(message.target) << 32) | message.tag;
}

/// Diagnostic phase timers only (group_ns/stage_ns, off by default);
/// never feeds reports or traces, so it reads the one sanctioned
/// wall-clock seam instead of std::chrono directly.
inline uint64_t NowNs() { return wallclock::NowNs(); }

/// Below this size a comparison sort beats the radix passes' fixed costs
/// (histogram zeroing, scratch traffic).
constexpr size_t kRadixThreshold = 64;

}  // namespace

size_t CombineIndex::FindOrInsert(uint64_t key, size_t fresh_value,
                                  bool* inserted) {
  if (size_ * 4 >= slots_.size() * 3) Grow();  // Load factor cap: 3/4.
  uint64_t hash = key * 0x9e3779b97f4a7c15ULL;
  size_t index = (hash ^ (hash >> 29)) & mask_;
  while (true) {
    Slot& slot = slots_[index];
    if (slot.epoch != epoch_) {  // Empty or stale from a cleared round.
      slot.key = key;
      slot.value = fresh_value;
      slot.epoch = epoch_;
      ++size_;
      *inserted = true;
      return fresh_value;
    }
    if (slot.key == key) {
      *inserted = false;
      return slot.value;
    }
    index = (index + 1) & mask_;
  }
}

void CombineIndex::Grow() {
  std::vector<Slot> old = std::move(slots_);
  const size_t capacity = old.empty() ? 64 : old.size() * 2;
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  for (const Slot& slot : old) {
    if (slot.epoch != epoch_) continue;
    uint64_t hash = slot.key * 0x9e3779b97f4a7c15ULL;
    size_t index = (hash ^ (hash >> 29)) & mask_;
    while (slots_[index].epoch == epoch_) index = (index + 1) & mask_;
    slots_[index] = slot;
  }
}

void Worker::Reset(uint32_t num_machines) {
  // Resize (not assign) so that inner buffers keep their capacity across
  // rounds and repeated engine runs — the steady state allocates nothing.
  outboxes_.resize(num_machines);
  combine_index_.resize(num_machines);
  for (std::vector<Message>& outbox : outboxes_) outbox.clear();
  for (CombineIndex& index : combine_index_) index.Clear();
  inbox_.clear();
  send_stats_.Clear();
  group_ns_ = 0;
  stage_ns_ = 0;
}

bool Worker::Stage(uint32_t target_machine, const Message& message,
                   const Combiner* combiner) {
  const uint64_t t0 = collect_timing_ ? NowNs() : 0;
  auto& outbox = outboxes_[target_machine];
  bool new_wire = true;
  if (combiner != nullptr) {
    bool inserted = false;
    size_t position = combine_index_[target_machine].FindOrInsert(
        KeyOf(message), outbox.size(), &inserted);
    if (!inserted) {
      combiner->Merge(outbox[position], message);
      new_wire = false;  // Merged: no new wire message.
    }
  }
  if (new_wire) outbox.push_back(message);
  if (collect_timing_) stage_ns_ += NowNs() - t0;
  return new_wire;
}

void Worker::Drain(uint32_t machine, std::vector<Message>* dest) {
  auto& outbox = outboxes_[machine];
  dest->insert(dest->end(), outbox.begin(), outbox.end());
  outbox.clear();
  combine_index_[machine].Clear();
}

void Worker::GroupInbox() {
  const uint64_t t0 = collect_timing_ ? NowNs() : 0;
  if (inbox_.size() < kRadixThreshold) {
    std::stable_sort(inbox_.begin(), inbox_.end(),
                     [](const Message& a, const Message& b) {
                       return KeyOf(a) < KeyOf(b);
                     });
  } else {
    RadixSortInbox();
  }
  if (collect_timing_) group_ns_ += NowNs() - t0;
}

void Worker::RadixSortInbox() {
  const size_t n = inbox_.size();
  scratch_.resize(n);
  // One scan finds the bytes that actually vary: targets/tags rarely use
  // all 64 bits, so most of the 8 possible passes are skipped.
  uint64_t all_or = 0;
  uint64_t all_and = ~uint64_t{0};
  for (const Message& message : inbox_) {
    uint64_t key = KeyOf(message);
    all_or |= key;
    all_and &= key;
  }
  const uint64_t varying = all_or ^ all_and;

  Message* src = inbox_.data();
  Message* dst = scratch_.data();
  bool in_scratch = false;
  for (int byte = 0; byte < 8; ++byte) {
    const int shift = byte * 8;
    if (((varying >> shift) & 0xff) == 0) continue;  // Constant digit.
    std::array<uint32_t, 256> counts{};
    for (size_t i = 0; i < n; ++i) {
      counts[(KeyOf(src[i]) >> shift) & 0xff]++;
    }
    uint32_t offset = 0;
    std::array<uint32_t, 256> starts;
    for (int digit = 0; digit < 256; ++digit) {
      starts[digit] = offset;
      offset += counts[digit];
    }
    for (size_t i = 0; i < n; ++i) {  // Stable scatter (LSD).
      dst[starts[(KeyOf(src[i]) >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
    in_scratch = !in_scratch;
  }
  if (in_scratch) inbox_.swap(scratch_);
}

}  // namespace vcmp
