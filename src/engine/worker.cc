#include "engine/worker.h"

#include <algorithm>
#include <array>
#include <functional>

#include "common/thread_pool.h"
#include "common/wall_clock.h"

namespace vcmp {
namespace {

/// Diagnostic phase timers only (group_ns/stage_ns, off by default);
/// never feeds reports or traces, so it reads the one sanctioned
/// wall-clock seam instead of std::chrono directly.
inline uint64_t NowNs() { return wallclock::NowNs(); }

/// Below this size a comparison sort beats the radix passes' fixed costs
/// (histogram zeroing, scratch traffic).
constexpr size_t kRadixThreshold = 64;

}  // namespace

void CombineIndex::Grow() {
  std::vector<Slot> old = std::move(slots_);
  const size_t capacity = old.empty() ? 64 : old.size() * 2;
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  for (const Slot& slot : old) {
    if (slot.epoch != epoch_) continue;
    uint64_t hash = slot.key * 0x9e3779b97f4a7c15ULL;
    size_t index = (hash ^ (hash >> 29)) & mask_;
    while (slots_[index].epoch == epoch_) index = (index + 1) & mask_;
    slots_[index] = slot;
  }
}

void Worker::Reset(uint32_t num_machines) {
  // Resize (not assign) so that inner buffers keep their capacity across
  // rounds and repeated engine runs — the steady state allocates nothing.
  outboxes_.resize(num_machines);
  combine_index_.resize(num_machines);
  for (MessageBlock& outbox : outboxes_) outbox.Clear();
  for (CombineIndex& index : combine_index_) index.Clear();
  inbox_.Clear();
  runs_.clear();
  grouped_values_ptr_ = nullptr;
  grouped_mults_ptr_ = nullptr;
  aos_valid_ = false;
  send_stats_.Clear();
  group_ns_ = 0;
  stage_ns_ = 0;
  group_mode_ = GroupMode::kIdle;
  group_digit_passes_ = 0;
}

void Worker::Drain(uint32_t machine, MessageBlock* dest) {
  MessageBlock& outbox = outboxes_[machine];
  dest->Append(outbox);
  outbox.Clear();
  combine_index_[machine].Clear();
}

void Worker::SwapOutbox(uint32_t machine, MessageBlock* dest) {
  dest->Swap(outboxes_[machine]);
  combine_index_[machine].Clear();
}

void Worker::GroupInbox() {
  const uint64_t t0 = collect_timing_ ? NowNs() : 0;
  GroupInboxSerial();
  if (collect_timing_) group_ns_ += NowNs() - t0;
}

void Worker::PublishPregroupedRuns() {
  // runs_ was filled by the fold through pregrouped_runs(); the payload
  // stays in the inbox columns, exactly like the sorted fast path.
  aos_valid_ = false;
  grouped_values_ptr_ = inbox_.values();
  grouped_mults_ptr_ = inbox_.multiplicities();
}



void Worker::GroupInboxSerial() {
  const size_t n = inbox_.size();
  runs_.clear();
  aos_valid_ = false;
  grouped_values_ptr_ = inbox_.values();
  grouped_mults_ptr_ = inbox_.multiplicities();
  if (n == 0) return;

  // One scan packs the keys, finds the bytes that actually vary
  // (targets/tags rarely use all 64 bits, so most radix passes skip),
  // and detects an already-sorted inbox — common after single-sender
  // combining — which needs no permutation at all.
  keys_.resize(n);
  const VertexId* targets = inbox_.targets();
  const uint32_t* tags = inbox_.tags();
  uint64_t all_or = 0;
  uint64_t all_and = ~uint64_t{0};
  uint64_t prev = 0;
  bool sorted = true;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = (static_cast<uint64_t>(targets[i]) << 32) | tags[i];
    keys_[i] = key;
    all_or |= key;
    all_and &= key;
    sorted &= (key >= prev);
    prev = key;
  }

  if (sorted) {
    BuildRunsFromKeys(n);  // Payload stays in the inbox columns.
  } else {
    const uint64_t varying = all_or ^ all_and;
    const bool single_tag = (varying & 0xffffffffULL) == 0;
    if (single_tag && vertex_space_ > 0 &&
        n >= static_cast<size_t>(vertex_space_)) {
      // High occupancy, one tag: a dense per-vertex counting pass beats
      // the radix passes and emits the runs directly.
      GroupDense(n);
    } else {
      SortPairsAndGather(varying, n);
      BuildRunsFromKeys(n);
    }
    grouped_values_ptr_ = grouped_values_.data();
    grouped_mults_ptr_ = grouped_mults_.data();
  }
}

void Worker::SortPairsAndGather(uint64_t varying, size_t n) {
  pairs_.resize(n);
  for (size_t i = 0; i < n; ++i) pairs_[i] = KeyIdx{keys_[i], uint32_t(i)};

  if (n < kRadixThreshold) {
    std::stable_sort(
        pairs_.begin(), pairs_.end(),
        [](const KeyIdx& a, const KeyIdx& b) { return a.key < b.key; });
  } else {
    pair_scratch_.resize(n);
    KeyIdx* src = pairs_.data();
    KeyIdx* dst = pair_scratch_.data();
    bool in_scratch = false;
    for (int byte = 0; byte < 8; ++byte) {
      const int shift = byte * 8;
      if (((varying >> shift) & 0xff) == 0) continue;  // Constant digit.
      std::array<uint32_t, 256> counts{};
      for (size_t i = 0; i < n; ++i) {
        counts[(src[i].key >> shift) & 0xff]++;
      }
      uint32_t offset = 0;
      std::array<uint32_t, 256> starts;
      for (int digit = 0; digit < 256; ++digit) {
        starts[digit] = offset;
        offset += counts[digit];
      }
      for (size_t i = 0; i < n; ++i) {  // Stable scatter (LSD).
        dst[starts[(src[i].key >> shift) & 0xff]++] = src[i];
      }
      std::swap(src, dst);
      in_scratch = !in_scratch;
    }
    if (in_scratch) pairs_.swap(pair_scratch_);
  }

  // Gather only the payload columns through the permutation, and write
  // the sorted keys back so run building reads one flat array.
  grouped_values_.resize(n);
  grouped_mults_.resize(n);
  const double* values = inbox_.values();
  const double* mults = inbox_.multiplicities();
  for (size_t i = 0; i < n; ++i) {
    const KeyIdx pair = pairs_[i];
    keys_[i] = pair.key;
    grouped_values_[i] = values[pair.idx];
    grouped_mults_[i] = mults[pair.idx];
  }
}

void Worker::GroupDense(size_t n) {
  const VertexId* targets = inbox_.targets();
  const uint32_t tag = inbox_.tags()[0];  // Single-tag precondition.
  counts_.assign(vertex_space_, 0);
  for (size_t i = 0; i < n; ++i) counts_[targets[i]]++;

  // Exclusive prefix sum; nonzero counts become runs (ascending target),
  // and counts_ is repurposed as the per-target scatter cursor.
  uint32_t offset = 0;
  for (VertexId t = 0; t < vertex_space_; ++t) {
    const uint32_t count = counts_[t];
    if (count != 0) {
      runs_.push_back(MessageRun{t, tag, offset, offset + count});
    }
    counts_[t] = offset;
    offset += count;
  }

  grouped_values_.resize(n);
  grouped_mults_.resize(n);
  const double* values = inbox_.values();
  const double* mults = inbox_.multiplicities();
  for (size_t i = 0; i < n; ++i) {  // Stable scatter (input order).
    const uint32_t pos = counts_[targets[i]]++;
    grouped_values_[pos] = values[i];
    grouped_mults_[pos] = mults[i];
  }
}

void Worker::BuildRunsFromKeys(size_t n) {
  size_t i = 0;
  while (i < n) {
    const uint64_t key = keys_[i];
    size_t j = i + 1;
    while (j < n && keys_[j] == key) ++j;
    runs_.push_back(MessageRun{static_cast<VertexId>(key >> 32),
                               static_cast<uint32_t>(key),
                               static_cast<uint32_t>(i),
                               static_cast<uint32_t>(j)});
    i = j;
  }
}

void Worker::GroupScanBegin() {
  const size_t n = inbox_.size();
  if (n < kParallelGroupingThreshold) {
    // One serial sort beats the pass barriers here. Timing is NOT added
    // to group_ns_: the parallel driver measures the whole episode as
    // wall time, and this call runs inside it.
    GroupInboxSerial();
    group_mode_ = GroupMode::kSerialDone;
    group_digit_passes_ = 0;
    return;
  }
  runs_.clear();
  aos_valid_ = false;
  grouped_values_ptr_ = inbox_.values();
  grouped_mults_ptr_ = inbox_.multiplicities();
  keys_.resize(n);
  pairs_.resize(n);
  pair_scratch_.resize(n);
  chunk_or_.assign(kGroupChunks, 0);
  chunk_and_.assign(kGroupChunks, ~uint64_t{0});
  chunk_first_.assign(kGroupChunks, 0);
  chunk_last_.assign(kGroupChunks, 0);
  chunk_sorted_.assign(kGroupChunks, 1);
  chunk_empty_.assign(kGroupChunks, 1);
  group_mode_ = GroupMode::kScan;
  group_digit_passes_ = 0;
}

void Worker::GroupScanChunk(uint32_t chunk) {
  if (group_mode_ != GroupMode::kScan) return;
  const auto [begin, end] = ChunkRange(inbox_.size(), chunk);
  if (begin == end) return;  // chunk_empty_ stays set.
  const VertexId* targets = inbox_.targets();
  const uint32_t* tags = inbox_.tags();
  uint64_t all_or = 0;
  uint64_t all_and = ~uint64_t{0};
  uint64_t prev = 0;
  bool sorted = true;
  for (size_t i = begin; i < end; ++i) {
    const uint64_t key =
        (static_cast<uint64_t>(targets[i]) << 32) | tags[i];
    keys_[i] = key;
    pairs_[i] = KeyIdx{key, static_cast<uint32_t>(i)};
    all_or |= key;
    all_and &= key;
    sorted &= (i == begin || key >= prev);
    prev = key;
  }
  chunk_or_[chunk] = all_or;
  chunk_and_[chunk] = all_and;
  chunk_first_[chunk] = keys_[begin];
  chunk_last_[chunk] = keys_[end - 1];
  chunk_sorted_[chunk] = sorted ? 1 : 0;
  chunk_empty_[chunk] = 0;
}

void Worker::GroupPlan() {
  if (group_mode_ != GroupMode::kScan) return;
  const size_t n = inbox_.size();
  uint64_t all_or = 0;
  uint64_t all_and = ~uint64_t{0};
  bool sorted = true;
  uint64_t prev_last = 0;
  bool have_prev = false;
  for (uint32_t c = 0; c < kGroupChunks; ++c) {
    if (chunk_empty_[c]) continue;
    all_or |= chunk_or_[c];
    all_and &= chunk_and_[c];
    sorted = sorted && chunk_sorted_[c] != 0 &&
             (!have_prev || chunk_first_[c] >= prev_last);
    prev_last = chunk_last_[c];
    have_prev = true;
  }
  if (sorted) {
    BuildRunsFromKeys(n);  // Payload stays in the inbox columns.
    group_mode_ = GroupMode::kSerialDone;
    return;
  }
  const uint64_t varying = all_or ^ all_and;
  grouped_values_.resize(n);
  grouped_mults_.resize(n);
  const bool single_tag = (varying & 0xffffffffULL) == 0;
  if (single_tag && vertex_space_ > 0 &&
      n >= static_cast<size_t>(vertex_space_) &&
      vertex_space_ <= kDenseParallelMaxVertexSpace) {
    group_mode_ = GroupMode::kDense;
    group_digit_passes_ = 1;
    // Values are stale; each histogram chunk zeroes its own slice.
    chunk_hist_.resize(static_cast<size_t>(kGroupChunks) * vertex_space_);
    return;
  }
  // Unsorted implies at least two distinct keys, so `varying` has at
  // least one nonzero byte and the radix always gets >= 1 pass. Every
  // listed pass executes (no skipping), so the ping-pong buffer parity
  // below is simply the pass index's parity.
  group_mode_ = GroupMode::kRadix;
  digit_shifts_.clear();
  for (int byte = 0; byte < 8; ++byte) {
    if (((varying >> (byte * 8)) & 0xff) != 0) {
      digit_shifts_.push_back(byte * 8);
    }
  }
  group_digit_passes_ = static_cast<uint32_t>(digit_shifts_.size());
  chunk_hist_.resize(static_cast<size_t>(kGroupChunks) * 256);
}

void Worker::GroupHistChunk(uint32_t pass, uint32_t chunk) {
  if (pass >= group_digit_passes_) return;
  const auto [begin, end] = ChunkRange(inbox_.size(), chunk);
  if (group_mode_ == GroupMode::kRadix) {
    const int shift = digit_shifts_[pass];
    const KeyIdx* src =
        (pass % 2 == 0) ? pairs_.data() : pair_scratch_.data();
    uint32_t* hist = chunk_hist_.data() + static_cast<size_t>(chunk) * 256;
    std::fill_n(hist, 256, 0u);
    for (size_t i = begin; i < end; ++i) {
      hist[(src[i].key >> shift) & 0xff]++;
    }
  } else {  // kDense.
    uint32_t* hist =
        chunk_hist_.data() + static_cast<size_t>(chunk) * vertex_space_;
    std::fill_n(hist, vertex_space_, 0u);
    const VertexId* targets = inbox_.targets();
    for (size_t i = begin; i < end; ++i) hist[targets[i]]++;
  }
}

void Worker::GroupPrefix(uint32_t pass) {
  if (pass >= group_digit_passes_) return;
  // Digit-major outer, chunk-minor inner: within one digit every chunk's
  // elements land AFTER all lower chunks' — i.e. in input order — which
  // reproduces the serial stable scatter's permutation exactly.
  if (group_mode_ == GroupMode::kRadix) {
    uint32_t offset = 0;
    for (uint32_t digit = 0; digit < 256; ++digit) {
      for (uint32_t c = 0; c < kGroupChunks; ++c) {
        uint32_t& slot = chunk_hist_[static_cast<size_t>(c) * 256 + digit];
        const uint32_t count = slot;
        slot = offset;  // Histogram becomes this chunk's scatter cursor.
        offset += count;
      }
    }
  } else {  // kDense: same shape over vertex buckets; also emits runs.
    const uint32_t tag = inbox_.tags()[0];  // Single-tag precondition.
    uint32_t offset = 0;
    for (VertexId t = 0; t < vertex_space_; ++t) {
      uint32_t total = 0;
      for (uint32_t c = 0; c < kGroupChunks; ++c) {
        uint32_t& slot =
            chunk_hist_[static_cast<size_t>(c) * vertex_space_ + t];
        const uint32_t count = slot;
        slot = offset;
        offset += count;
        total += count;
      }
      if (total != 0) {
        runs_.push_back(MessageRun{t, tag, offset - total, offset});
      }
    }
  }
}

void Worker::GroupScatterChunk(uint32_t pass, uint32_t chunk) {
  if (pass >= group_digit_passes_) return;
  const auto [begin, end] = ChunkRange(inbox_.size(), chunk);
  if (group_mode_ == GroupMode::kRadix) {
    const int shift = digit_shifts_[pass];
    const bool even = (pass % 2 == 0);
    const KeyIdx* src = even ? pairs_.data() : pair_scratch_.data();
    KeyIdx* dst = even ? pair_scratch_.data() : pairs_.data();
    uint32_t* cursor =
        chunk_hist_.data() + static_cast<size_t>(chunk) * 256;
    for (size_t i = begin; i < end; ++i) {
      dst[cursor[(src[i].key >> shift) & 0xff]++] = src[i];
    }
  } else {  // kDense: scatter the payload directly (one pass total).
    uint32_t* cursor =
        chunk_hist_.data() + static_cast<size_t>(chunk) * vertex_space_;
    const VertexId* targets = inbox_.targets();
    const double* values = inbox_.values();
    const double* mults = inbox_.multiplicities();
    for (size_t i = begin; i < end; ++i) {
      const uint32_t pos = cursor[targets[i]]++;
      grouped_values_[pos] = values[i];
      grouped_mults_[pos] = mults[i];
    }
  }
}

void Worker::GroupGatherChunk(uint32_t chunk) {
  if (group_mode_ != GroupMode::kRadix) return;
  const auto [begin, end] = ChunkRange(inbox_.size(), chunk);
  const KeyIdx* sorted = (group_digit_passes_ % 2 == 0)
                             ? pairs_.data()
                             : pair_scratch_.data();
  const double* values = inbox_.values();
  const double* mults = inbox_.multiplicities();
  for (size_t i = begin; i < end; ++i) {
    const KeyIdx pair = sorted[i];
    keys_[i] = pair.key;
    grouped_values_[i] = values[pair.idx];
    grouped_mults_[i] = mults[pair.idx];
  }
}

void Worker::GroupFinish() {
  if (group_mode_ == GroupMode::kRadix) {
    BuildRunsFromKeys(inbox_.size());
  }
  if (group_mode_ == GroupMode::kRadix ||
      group_mode_ == GroupMode::kDense) {
    grouped_values_ptr_ = grouped_values_.data();
    grouped_mults_ptr_ = grouped_mults_.data();
  }
  group_mode_ = GroupMode::kIdle;
  group_digit_passes_ = 0;
}

uint64_t ParallelGroupInboxes(ThreadPool& pool, std::span<Worker> workers,
                              bool steal, bool collect_timing) {
  const uint64_t t0 = collect_timing ? NowNs() : 0;
  const uint32_t machines = static_cast<uint32_t>(workers.size());
  const uint32_t chunks = Worker::kGroupChunks;
  const uint32_t chunk_tasks = machines * chunks;
  auto launch = [&pool, steal](uint32_t count,
                               const std::function<void(uint32_t)>& fn) {
    if (steal) {
      pool.ParallelForStealable(count, fn);
    } else {
      pool.ParallelFor(count, fn);
    }
  };
  pool.ParallelFor(machines,
                   [&](uint32_t m) { workers[m].GroupScanBegin(); });
  launch(chunk_tasks, [&](uint32_t task) {
    workers[task / chunks].GroupScanChunk(task % chunks);
  });
  pool.ParallelFor(machines, [&](uint32_t m) { workers[m].GroupPlan(); });
  // The lockstep digit count is the fleet maximum; machines with fewer
  // varying bytes no-op the surplus passes.
  uint32_t max_passes = 0;
  for (const Worker& worker : workers) {
    max_passes = std::max(max_passes, worker.group_digit_passes());
  }
  for (uint32_t pass = 0; pass < max_passes; ++pass) {
    launch(chunk_tasks, [&](uint32_t task) {
      workers[task / chunks].GroupHistChunk(pass, task % chunks);
    });
    pool.ParallelFor(machines,
                     [&](uint32_t m) { workers[m].GroupPrefix(pass); });
    launch(chunk_tasks, [&](uint32_t task) {
      workers[task / chunks].GroupScatterChunk(pass, task % chunks);
    });
  }
  if (max_passes > 0) {
    launch(chunk_tasks, [&](uint32_t task) {
      workers[task / chunks].GroupGatherChunk(task % chunks);
    });
  }
  pool.ParallelFor(machines,
                   [&](uint32_t m) { workers[m].GroupFinish(); });
  return collect_timing ? NowNs() - t0 : 0;
}

std::span<const Message> Worker::MaterializedInbox() {
  if (!aos_valid_) {
    const size_t n = inbox_.size();
    aos_scratch_.resize(n);
    const double* values = grouped_values_ptr_;
    const double* mults = grouped_mults_ptr_;
    for (const MessageRun& run : runs_) {
      for (uint32_t i = run.begin; i < run.end; ++i) {
        aos_scratch_[i] = Message{run.target, run.tag, values[i], mults[i]};
      }
    }
    aos_valid_ = true;
  }
  return {aos_scratch_.data(), inbox_.size()};
}

}  // namespace vcmp
