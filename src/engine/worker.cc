#include "engine/worker.h"

#include <algorithm>
#include <array>

#include "common/wall_clock.h"

namespace vcmp {
namespace {

/// Diagnostic phase timers only (group_ns/stage_ns, off by default);
/// never feeds reports or traces, so it reads the one sanctioned
/// wall-clock seam instead of std::chrono directly.
inline uint64_t NowNs() { return wallclock::NowNs(); }

/// Below this size a comparison sort beats the radix passes' fixed costs
/// (histogram zeroing, scratch traffic).
constexpr size_t kRadixThreshold = 64;

}  // namespace

void CombineIndex::Grow() {
  std::vector<Slot> old = std::move(slots_);
  const size_t capacity = old.empty() ? 64 : old.size() * 2;
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  for (const Slot& slot : old) {
    if (slot.epoch != epoch_) continue;
    uint64_t hash = slot.key * 0x9e3779b97f4a7c15ULL;
    size_t index = (hash ^ (hash >> 29)) & mask_;
    while (slots_[index].epoch == epoch_) index = (index + 1) & mask_;
    slots_[index] = slot;
  }
}

void Worker::Reset(uint32_t num_machines) {
  // Resize (not assign) so that inner buffers keep their capacity across
  // rounds and repeated engine runs — the steady state allocates nothing.
  outboxes_.resize(num_machines);
  combine_index_.resize(num_machines);
  for (MessageBlock& outbox : outboxes_) outbox.Clear();
  for (CombineIndex& index : combine_index_) index.Clear();
  inbox_.Clear();
  runs_.clear();
  grouped_values_ptr_ = nullptr;
  grouped_mults_ptr_ = nullptr;
  aos_valid_ = false;
  send_stats_.Clear();
  group_ns_ = 0;
  stage_ns_ = 0;
}

void Worker::Drain(uint32_t machine, MessageBlock* dest) {
  MessageBlock& outbox = outboxes_[machine];
  dest->Append(outbox);
  outbox.Clear();
  combine_index_[machine].Clear();
}

void Worker::SwapOutbox(uint32_t machine, MessageBlock* dest) {
  dest->Swap(outboxes_[machine]);
  combine_index_[machine].Clear();
}

void Worker::GroupInbox() {
  const uint64_t t0 = collect_timing_ ? NowNs() : 0;
  const size_t n = inbox_.size();
  runs_.clear();
  aos_valid_ = false;
  grouped_values_ptr_ = inbox_.values();
  grouped_mults_ptr_ = inbox_.multiplicities();
  if (n == 0) {
    if (collect_timing_) group_ns_ += NowNs() - t0;
    return;
  }

  // One scan packs the keys, finds the bytes that actually vary
  // (targets/tags rarely use all 64 bits, so most radix passes skip),
  // and detects an already-sorted inbox — common after single-sender
  // combining — which needs no permutation at all.
  keys_.resize(n);
  const VertexId* targets = inbox_.targets();
  const uint32_t* tags = inbox_.tags();
  uint64_t all_or = 0;
  uint64_t all_and = ~uint64_t{0};
  uint64_t prev = 0;
  bool sorted = true;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = (static_cast<uint64_t>(targets[i]) << 32) | tags[i];
    keys_[i] = key;
    all_or |= key;
    all_and &= key;
    sorted &= (key >= prev);
    prev = key;
  }

  if (sorted) {
    BuildRunsFromKeys(n);  // Payload stays in the inbox columns.
  } else {
    const uint64_t varying = all_or ^ all_and;
    const bool single_tag = (varying & 0xffffffffULL) == 0;
    if (single_tag && vertex_space_ > 0 &&
        n >= static_cast<size_t>(vertex_space_)) {
      // High occupancy, one tag: a dense per-vertex counting pass beats
      // the radix passes and emits the runs directly.
      GroupDense(n);
    } else {
      SortPairsAndGather(varying, n);
      BuildRunsFromKeys(n);
    }
    grouped_values_ptr_ = grouped_values_.data();
    grouped_mults_ptr_ = grouped_mults_.data();
  }
  if (collect_timing_) group_ns_ += NowNs() - t0;
}

void Worker::SortPairsAndGather(uint64_t varying, size_t n) {
  pairs_.resize(n);
  for (size_t i = 0; i < n; ++i) pairs_[i] = KeyIdx{keys_[i], uint32_t(i)};

  if (n < kRadixThreshold) {
    std::stable_sort(
        pairs_.begin(), pairs_.end(),
        [](const KeyIdx& a, const KeyIdx& b) { return a.key < b.key; });
  } else {
    pair_scratch_.resize(n);
    KeyIdx* src = pairs_.data();
    KeyIdx* dst = pair_scratch_.data();
    bool in_scratch = false;
    for (int byte = 0; byte < 8; ++byte) {
      const int shift = byte * 8;
      if (((varying >> shift) & 0xff) == 0) continue;  // Constant digit.
      std::array<uint32_t, 256> counts{};
      for (size_t i = 0; i < n; ++i) {
        counts[(src[i].key >> shift) & 0xff]++;
      }
      uint32_t offset = 0;
      std::array<uint32_t, 256> starts;
      for (int digit = 0; digit < 256; ++digit) {
        starts[digit] = offset;
        offset += counts[digit];
      }
      for (size_t i = 0; i < n; ++i) {  // Stable scatter (LSD).
        dst[starts[(src[i].key >> shift) & 0xff]++] = src[i];
      }
      std::swap(src, dst);
      in_scratch = !in_scratch;
    }
    if (in_scratch) pairs_.swap(pair_scratch_);
  }

  // Gather only the payload columns through the permutation, and write
  // the sorted keys back so run building reads one flat array.
  grouped_values_.resize(n);
  grouped_mults_.resize(n);
  const double* values = inbox_.values();
  const double* mults = inbox_.multiplicities();
  for (size_t i = 0; i < n; ++i) {
    const KeyIdx pair = pairs_[i];
    keys_[i] = pair.key;
    grouped_values_[i] = values[pair.idx];
    grouped_mults_[i] = mults[pair.idx];
  }
}

void Worker::GroupDense(size_t n) {
  const VertexId* targets = inbox_.targets();
  const uint32_t tag = inbox_.tags()[0];  // Single-tag precondition.
  counts_.assign(vertex_space_, 0);
  for (size_t i = 0; i < n; ++i) counts_[targets[i]]++;

  // Exclusive prefix sum; nonzero counts become runs (ascending target),
  // and counts_ is repurposed as the per-target scatter cursor.
  uint32_t offset = 0;
  for (VertexId t = 0; t < vertex_space_; ++t) {
    const uint32_t count = counts_[t];
    if (count != 0) {
      runs_.push_back(MessageRun{t, tag, offset, offset + count});
    }
    counts_[t] = offset;
    offset += count;
  }

  grouped_values_.resize(n);
  grouped_mults_.resize(n);
  const double* values = inbox_.values();
  const double* mults = inbox_.multiplicities();
  for (size_t i = 0; i < n; ++i) {  // Stable scatter (input order).
    const uint32_t pos = counts_[targets[i]]++;
    grouped_values_[pos] = values[i];
    grouped_mults_[pos] = mults[i];
  }
}

void Worker::BuildRunsFromKeys(size_t n) {
  size_t i = 0;
  while (i < n) {
    const uint64_t key = keys_[i];
    size_t j = i + 1;
    while (j < n && keys_[j] == key) ++j;
    runs_.push_back(MessageRun{static_cast<VertexId>(key >> 32),
                               static_cast<uint32_t>(key),
                               static_cast<uint32_t>(i),
                               static_cast<uint32_t>(j)});
    i = j;
  }
}

std::span<const Message> Worker::MaterializedInbox() {
  if (!aos_valid_) {
    const size_t n = inbox_.size();
    aos_scratch_.resize(n);
    const double* values = grouped_values_ptr_;
    const double* mults = grouped_mults_ptr_;
    for (const MessageRun& run : runs_) {
      for (uint32_t i = run.begin; i < run.end; ++i) {
        aos_scratch_[i] = Message{run.target, run.tag, values[i], mults[i]};
      }
    }
    aos_valid_ = true;
  }
  return {aos_scratch_.data(), inbox_.size()};
}

}  // namespace vcmp
