#ifndef VCMP_SERVICE_BATCHER_H_
#define VCMP_SERVICE_BATCHER_H_

#include <string>
#include <vector>

#include "core/tuning/memory_fit.h"

namespace vcmp {

/// What a batching policy sees at a decision point (the engine is idle
/// and at least one query is queued).
struct BatcherObservation {
  double now_seconds = 0.0;
  size_t queued_queries = 0;
  /// Total workload units queued.
  double queued_units = 0.0;
  /// Age of the oldest queued query.
  double oldest_wait_seconds = 0.0;
  /// Max-per-machine residual memory of in-flight jobs (completed but not
  /// yet flushed), paper-scale bytes.
  double residual_bytes = 0.0;
};

/// An online batch-formation policy. Decides how many workload units the
/// next batch may take; the serving loop pops queries fairly up to that
/// budget. Returning 0 means "keep waiting" (for more arrivals, or for
/// residual memory to drain).
class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;

  virtual std::string name() const = 0;

  virtual double NextBatchUnits(const BatcherObservation& obs) = 0;

  /// Longest time the policy lets the oldest query wait before it forms
  /// a batch anyway (the anti-starvation deadline). The serving loop uses
  /// it to schedule the age-trigger wake-up.
  virtual double MaxWaitSeconds() const = 0;
};

/// The static baseline: always batch exactly `batch_units` (the offline
/// k-batch mechanism applied online). Oblivious to memory — under bursts
/// it either queues deeply (small k) or overloads (large k).
class FixedBatcher : public BatchPolicy {
 public:
  FixedBatcher(double batch_units, double max_wait_seconds);

  std::string name() const override;
  double NextBatchUnits(const BatcherObservation& obs) override;
  double MaxWaitSeconds() const override { return max_wait_seconds_; }

 private:
  double batch_units_;
  double max_wait_seconds_;
};

struct DynamicBatcherOptions {
  /// The paper's overloading parameter p and per-machine memory M: the
  /// scheduled batch must satisfy M*(W) + residual <= p * M.
  double overload_fraction = 0.85;
  double machine_memory_bytes = 16.0 * (1ULL << 30);
  /// Extra headroom subtracted from the budget (model error margin).
  double safety_fraction = 0.05;
  /// Bounds on one batch's units.
  double min_batch_units = 1.0;
  double max_batch_units = 1 << 20;
  /// Age trigger: a batch forms once the oldest query waited this long,
  /// even if more arrivals could still be coalesced.
  double max_wait_seconds = 2.0;
};

/// The model-driven policy: the online analogue of the paper's Eq. 6
/// planner. At each decision point it inverts the fitted peak-memory
/// models against the *current* free memory — budget p*M minus the
/// residual of in-flight batches — and schedules the largest workload
/// that fits:
///
///   W_next = max { W : M*(W) + Mres_inflight <= (1 - safety) * p * M }.
///
/// As residual accumulates the batches shrink; as it drains they grow
/// back. With several task types in the mix, the conservative envelope
/// (max peak over all fitted models) bounds every mix.
class DynamicBatcher : public BatchPolicy {
 public:
  DynamicBatcher(std::vector<MemoryModels> models,
                 DynamicBatcherOptions options);
  DynamicBatcher(const MemoryModels& models,
                 DynamicBatcherOptions options);

  std::string name() const override;
  double NextBatchUnits(const BatcherObservation& obs) override;
  double MaxWaitSeconds() const override {
    return options_.max_wait_seconds;
  }

  /// Largest integral unit count whose predicted peak fits beside
  /// `residual_bytes` (0 when not even min_batch_units fits — the loop
  /// then waits for residual to drain).
  double MaxFeasibleUnits(double residual_bytes) const;

  /// Conservative predicted peak: max over the fitted models.
  double PredictedPeakBytes(double units) const;

  const DynamicBatcherOptions& options() const { return options_; }

 private:
  std::vector<MemoryModels> models_;
  DynamicBatcherOptions options_;
};

}  // namespace vcmp

#endif  // VCMP_SERVICE_BATCHER_H_
