#ifndef VCMP_SERVICE_SERVE_SPEC_H_
#define VCMP_SERVICE_SERVE_SPEC_H_

#include <string>
#include <vector>

#include "common/ini.h"
#include "common/result.h"
#include "metrics/service_report.h"

namespace vcmp {

class Tracer;

/// A declarative serving scenario, loadable from an INI section (see
/// tools/vcmp_serve.cc for the key reference). One section = one serving
/// run: an arrival trace, an admission policy, a batching policy, and
/// the simulated deployment it executes on.
struct ServeSpec {
  std::string name;
  std::string dataset = "DBLP";
  std::string task = "BPPR";
  std::string system = "Pregel+";
  std::string cluster = "galaxy";
  uint32_t machines = 0;  // 0 = the cluster preset's count.
  double scale = 0.0;     // 0 = dataset default.
  uint64_t seed = 7;
  uint32_t threads = 0;  // 0 = auto.

  /// Arrival side.
  double horizon_seconds = 60.0;
  uint32_t clients = 4;
  double rate_per_second = 1.0;
  /// "DURxRATE,DURxRATE,..." piecewise trace (empty = steady Poisson).
  std::string trace;
  double units_per_query = 1.0;

  /// Admission side.
  size_t per_client_capacity = 1024;
  size_t total_capacity = 4096;

  /// Per-job dispatch + result-collection overhead, simulated seconds
  /// (overrides the cost model's batch_overhead_seconds when > 0). In
  /// serving every formed batch is one submitted job, so this is the
  /// fixed cost batching amortises.
  double job_overhead_seconds = 0.0;

  /// Batching side: "dynamic" or "fixed:UNITS".
  std::string policy = "dynamic";
  double max_wait_seconds = 2.0;
  double drain_delay_seconds = 4.0;
  double overload_fraction = 0.85;
  double safety_fraction = 0.05;
  /// Training target workload for the dynamic policy's memory models.
  double train_target = 4096.0;
};

/// Parses every section of an INI document into a ServeSpec (section name
/// = scenario name). Unknown keys are an error.
Result<std::vector<ServeSpec>> ParseServeSpecs(const IniDocument& document);

/// Parses "40x1,20x12,60x1" into trace segments.
Result<std::vector<struct TraceSegment>> ParseTrace(
    const std::string& trace);

/// Resolves and runs one scenario end to end: loads the dataset
/// stand-in, fits the memory models when the policy needs them (training
/// runs on the same deployment, as in Section 5), builds the arrival
/// process + admission queue + policy, and drives the serving loop.
/// When `tracer` is set, the serving loop records the query lifecycle
/// under the scenario's name (the dynamic policy's training probe runs
/// stay untraced — they are calibration, not the scenario).
Result<ServiceReport> RunServeScenario(const ServeSpec& spec,
                                       Tracer* tracer = nullptr);

}  // namespace vcmp

#endif  // VCMP_SERVICE_SERVE_SPEC_H_
