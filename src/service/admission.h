#ifndef VCMP_SERVICE_ADMISSION_H_
#define VCMP_SERVICE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "service/arrival.h"

namespace vcmp {

/// Admission-control configuration.
struct AdmissionOptions {
  /// A client whose private queue is full has its new arrivals shed
  /// (per-tenant backpressure: one client's burst cannot evict another's
  /// queued work).
  size_t per_client_capacity = 1024;
  /// Hard cap on the total queued queries; arrivals beyond it are shed
  /// regardless of the per-client headroom.
  size_t total_capacity = 4096;
};

/// The multi-tenant admission queue: one FIFO per client, drained
/// round-robin so every backlogged client gets an equal share of each
/// formed batch (the inter-query fairness Hauck et al. show matters under
/// concurrent load). Overload protection is load shedding at admission
/// time — a shed query is rejected immediately, never queued.
class AdmissionQueue {
 public:
  AdmissionQueue(uint32_t num_clients, AdmissionOptions options);

  /// Admits or sheds `query`. Returns true when admitted.
  bool Offer(const QueryArrival& query);

  /// Removes up to `max_queries` queries, cycling over the clients'
  /// FIFOs starting after the last client served (so fairness persists
  /// across batches, not just within one).
  std::vector<QueryArrival> PopFair(size_t max_queries);

  /// Same round-robin drain, but bounded by a workload-unit budget: stops
  /// before the first query that would push the batch past `max_units`
  /// (the batcher's feasibility bound is in units, and it must hold
  /// exactly for the popped set).
  std::vector<QueryArrival> PopFairUnits(double max_units);

  size_t size() const { return size_; }
  /// Total workload units queued.
  double units() const { return units_; }
  bool empty() const { return size_ == 0; }

  /// Earliest arrival time among queued queries (SimClock::Horizon()
  /// when empty) — the age-trigger anchor.
  double OldestArrivalSeconds() const;

  uint64_t shed_count() const { return shed_count_; }
  const std::vector<uint64_t>& per_client_shed() const {
    return per_client_shed_;
  }
  const std::vector<uint64_t>& per_client_admitted() const {
    return per_client_admitted_;
  }

 private:
  AdmissionOptions options_;
  std::vector<std::deque<QueryArrival>> queues_;
  std::vector<uint64_t> per_client_shed_;
  std::vector<uint64_t> per_client_admitted_;
  size_t size_ = 0;
  double units_ = 0.0;
  uint64_t shed_count_ = 0;
  /// Next client the round-robin cursor visits.
  uint32_t cursor_ = 0;
};

}  // namespace vcmp

#endif  // VCMP_SERVICE_ADMISSION_H_
