#include "service/admission.h"

#include "sim/sim_clock.h"

namespace vcmp {

AdmissionQueue::AdmissionQueue(uint32_t num_clients,
                               AdmissionOptions options)
    : options_(options),
      queues_(num_clients),
      per_client_shed_(num_clients, 0),
      per_client_admitted_(num_clients, 0) {}

bool AdmissionQueue::Offer(const QueryArrival& query) {
  if (query.client >= queues_.size()) return false;
  if (size_ >= options_.total_capacity ||
      queues_[query.client].size() >= options_.per_client_capacity) {
    ++shed_count_;
    ++per_client_shed_[query.client];
    return false;
  }
  queues_[query.client].push_back(query);
  ++per_client_admitted_[query.client];
  ++size_;
  units_ += query.units;
  return true;
}

std::vector<QueryArrival> AdmissionQueue::PopFair(size_t max_queries) {
  std::vector<QueryArrival> batch;
  batch.reserve(std::min(max_queries, size_));
  while (batch.size() < max_queries && size_ > 0) {
    std::deque<QueryArrival>& queue = queues_[cursor_];
    if (!queue.empty()) {
      units_ -= queue.front().units;
      batch.push_back(queue.front());
      queue.pop_front();
      --size_;
    }
    cursor_ = (cursor_ + 1) % queues_.size();
  }
  return batch;
}

std::vector<QueryArrival> AdmissionQueue::PopFairUnits(double max_units) {
  std::vector<QueryArrival> batch;
  double taken = 0.0;
  // One full idle lap over the clients means no queued head fits in the
  // remaining budget — stop there.
  uint32_t idle_lap = 0;
  while (size_ > 0 && idle_lap < queues_.size()) {
    std::deque<QueryArrival>& queue = queues_[cursor_];
    if (!queue.empty() && taken + queue.front().units <= max_units) {
      taken += queue.front().units;
      units_ -= queue.front().units;
      batch.push_back(queue.front());
      queue.pop_front();
      --size_;
      idle_lap = 0;
    } else {
      ++idle_lap;
    }
    cursor_ = (cursor_ + 1) % queues_.size();
  }
  return batch;
}

double AdmissionQueue::OldestArrivalSeconds() const {
  double oldest = SimClock::Horizon();
  for (const std::deque<QueryArrival>& queue : queues_) {
    if (!queue.empty() && queue.front().arrival_seconds < oldest) {
      oldest = queue.front().arrival_seconds;
    }
  }
  return oldest;
}

}  // namespace vcmp
