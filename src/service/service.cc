#include "service/service.h"

#include <algorithm>
#include <deque>

#include "obs/tracer.h"
#include "sim/sim_clock.h"
#include "tasks/task_registry.h"

namespace vcmp {

ServingLoop::ServingLoop(const ArrivalProcess& arrivals,
                         AdmissionOptions admission, BatchPolicy& policy,
                         BatchExecutor executor, ServiceOptions options)
    : arrivals_(arrivals),
      admission_(admission),
      policy_(policy),
      executor_(std::move(executor)),
      options_(options) {}

Result<ServiceReport> ServingLoop::Run() {
  VCMP_ASSIGN_OR_RETURN(std::vector<QueryArrival> arrivals,
                        arrivals_.Generate());
  const uint32_t num_clients =
      static_cast<uint32_t>(arrivals_.clients().size());
  AdmissionQueue queue(num_clients, admission_);
  SimClock clock;

  ServiceReport report;
  report.policy = policy_.name();
  report.horizon_seconds = options_.horizon_seconds;
  report.queries.resize(arrivals.size());

  /// Residual of finished-but-unflushed batches; FIFO because the drain
  /// delay is constant, so flush order equals completion order.
  struct LedgerEntry {
    double flush_seconds;
    double bytes;
  };
  std::deque<LedgerEntry> ledger;
  double residual_now = 0.0;
  double busy_seconds = 0.0;
  size_t next_arrival = 0;

  // Observability: the lifecycle ledger. `executing` counts queries in
  // the batch currently holding the engine; the gauge-bundle identity
  // (generated == admitted + shed, admitted == queued + executing +
  // completed) is what the reconciliation tests pin down.
  Tracer* const tracer = options_.tracer;
  uint32_t track = 0;
  if (tracer != nullptr) {
    track = tracer->AddTrack(options_.trace_label, "lifecycle");
  }
  double generated = 0.0;
  double admitted = 0.0;
  double shed_total = 0.0;
  double completed = 0.0;
  double executing = 0.0;
  auto emit_ledger = [&](double ts) {
    tracer->Gauge(track, "service.generated", ts, generated);
    tracer->Gauge(track, "service.admitted", ts, admitted);
    tracer->Gauge(track, "service.shed", ts, shed_total);
    tracer->Gauge(track, "service.queued", ts,
                  static_cast<double>(queue.size()));
    tracer->Gauge(track, "service.executing", ts, executing);
    tracer->Gauge(track, "service.completed", ts, completed);
    tracer->Gauge(track, "service.residual_bytes", ts, residual_now);
  };

  auto flush_ledger = [&]() {
    bool flushed = false;
    while (!ledger.empty() &&
           ledger.front().flush_seconds <= clock.now()) {
      residual_now -= ledger.front().bytes;
      ledger.pop_front();
      flushed = true;
    }
    if (ledger.empty()) residual_now = 0.0;  // Absorb float dust.
    if (flushed && tracer != nullptr) {
      tracer->Instant(track, "flush", clock.now(),
                      {{"residual_bytes", residual_now}});
      emit_ledger(clock.now());
    }
  };
  auto deliver_arrivals = [&]() {
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].arrival_seconds <= clock.now()) {
      const QueryArrival& query = arrivals[next_arrival];
      QueryOutcome& outcome = report.queries[query.id];
      outcome.id = query.id;
      outcome.client = query.client;
      outcome.task = query.task;
      outcome.units = query.units;
      outcome.arrival_seconds = query.arrival_seconds;
      outcome.shed = !queue.Offer(query);
      ++next_arrival;
      if (tracer != nullptr) {
        // Stamped with the delivery instant (the clock), not the
        // arrival draw: arrivals landing mid-batch surface when the
        // loop next looks, which keeps every track monotone.
        tracer->Instant(track, "arrive", clock.now(),
                        {{"id", static_cast<double>(query.id)},
                         {"client", static_cast<double>(query.client)},
                         {"units", query.units},
                         {"arrival_seconds", query.arrival_seconds}});
        tracer->Instant(track, outcome.shed ? "shed" : "admit",
                        clock.now(),
                        {{"id", static_cast<double>(query.id)}});
        generated += 1.0;
        tracer->Add("service.generated", 1.0);
        if (outcome.shed) {
          shed_total += 1.0;
          tracer->Add("service.shed", 1.0);
        } else {
          admitted += 1.0;
          tracer->Add("service.admitted", 1.0);
        }
        emit_ledger(clock.now());
      }
    }
  };

  deliver_arrivals();
  while (next_arrival < arrivals.size() || !queue.empty()) {
    flush_ledger();

    if (!queue.empty()) {
      BatcherObservation obs;
      obs.now_seconds = clock.now();
      obs.queued_queries = queue.size();
      obs.queued_units = queue.units();
      obs.oldest_wait_seconds =
          clock.now() - queue.OldestArrivalSeconds();
      obs.residual_bytes = residual_now;
      double unit_budget = policy_.NextBatchUnits(obs);
      if (unit_budget > 0.0) {
        std::vector<QueryArrival> batch = queue.PopFairUnits(unit_budget);
        if (!batch.empty()) {
          double units = 0.0;
          for (const QueryArrival& query : batch) units += query.units;
          VCMP_ASSIGN_OR_RETURN(BatchExecution exec,
                                executor_(batch, residual_now));
          const double start = clock.now();
          const double finish = start + exec.seconds;
          for (const QueryArrival& query : batch) {
            report.queries[query.id].start_seconds = start;
            report.queries[query.id].finish_seconds = finish;
          }
          ServiceBatchTrace trace;
          trace.start_seconds = start;
          trace.seconds = exec.seconds;
          trace.queries = batch.size();
          trace.units = units;
          trace.residual_at_formation_bytes = residual_now;
          trace.peak_memory_bytes = exec.peak_memory_bytes;
          trace.overloaded = exec.overloaded;
          report.batches.push_back(trace);
          busy_seconds += exec.seconds;
          if (tracer != nullptr) {
            tracer->Begin(
                track, "batch", start,
                {{"queries", static_cast<double>(batch.size())},
                 {"units", units},
                 {"residual_at_formation_bytes", residual_now},
                 {"peak_memory_bytes", exec.peak_memory_bytes}});
            executing = static_cast<double>(batch.size());
            tracer->Add("service.batches", 1.0);
            tracer->Add("service.busy_seconds", exec.seconds);
            emit_ledger(start);
          }
          // The batch's residual materialises at completion and stays
          // until results flush. No formation decision happens before
          // `finish` (the engine is serial), so it may join the ledger
          // immediately.
          ledger.push_back(
              {finish + options_.drain_delay_seconds, exec.residual_bytes});
          residual_now += exec.residual_bytes;
          if (tracer != nullptr) {
            tracer->End(track, finish,
                        {{"overloaded", exec.overloaded ? 1.0 : 0.0}});
            completed += static_cast<double>(batch.size());
            executing = 0.0;
            tracer->Add("service.completed",
                        static_cast<double>(batch.size()));
            emit_ledger(finish);
          }
          clock.AdvanceTo(finish);
          deliver_arrivals();
          continue;
        }
      }
    }

    // Nothing formed: advance to the next event that can change the
    // decision — an arrival, a residual flush, or the age-trigger
    // deadline of the oldest queued query (if it has not fired yet).
    double next_event = SimClock::Horizon();
    if (next_arrival < arrivals.size()) {
      next_event =
          std::min(next_event, arrivals[next_arrival].arrival_seconds);
    }
    if (!ledger.empty()) {
      next_event = std::min(next_event, ledger.front().flush_seconds);
    }
    if (!queue.empty()) {
      double deadline =
          queue.OldestArrivalSeconds() + policy_.MaxWaitSeconds();
      if (deadline > clock.now()) {
        next_event = std::min(next_event, deadline);
      }
    }
    if (next_event <= clock.now() ||
        next_event == SimClock::Horizon()) {
      // The age trigger already fired, no arrivals or flushes are
      // pending, and still nothing formed: the head query can never be
      // scheduled under the policy's memory bound.
      return Status::FailedPrecondition(
          "serving stalled: a queued query cannot be scheduled (its "
          "units exceed the feasible batch size even with all residual "
          "memory drained)");
    }
    clock.AdvanceTo(next_event);
    deliver_arrivals();
  }

  report.Finalize(num_clients, busy_seconds);
  return report;
}

BatchExecutor MakeRunnerExecutor(const Dataset& dataset,
                                 const RunnerOptions& runner_options) {
  // The batch counter salts each sub-job's seed so two batches of the
  // same task draw independent unit tasks, deterministically.
  auto batch_counter = std::make_shared<uint64_t>(0);
  return [&dataset, runner_options, batch_counter](
             const std::vector<QueryArrival>& batch,
             double residual_bytes) -> Result<BatchExecution> {
    BatchExecution exec;
    // Group by task type in first-appearance order; each group runs as
    // one single-batch engine job, later groups seeing the residual the
    // earlier ones just deposited.
    std::vector<std::pair<std::string, double>> groups;
    for (const QueryArrival& query : batch) {
      bool found = false;
      for (auto& group : groups) {
        if (group.first == query.task) {
          group.second += query.units;
          found = true;
          break;
        }
      }
      if (!found) groups.emplace_back(query.task, query.units);
    }
    double resident = residual_bytes;
    for (const auto& [task_name, units] : groups) {
      VCMP_ASSIGN_OR_RETURN(std::unique_ptr<MultiTask> task,
                            MakeTask(task_name));
      RunnerOptions options = runner_options;
      ++*batch_counter;
      options.seed = runner_options.seed + *batch_counter * 7919ULL;
      options.initial_residual_bytes.assign(
          options.cluster.num_machines, resident);
      double final_residual = 0.0;
      options.residual_observer =
          [&](uint64_t, const std::vector<double>& residuals) {
            for (double bytes : residuals) {
              final_residual = std::max(final_residual, bytes);
            }
          };
      MultiProcessingRunner runner(dataset, options);
      VCMP_ASSIGN_OR_RETURN(
          RunReport run,
          runner.Run(*task, BatchSchedule::FullParallelism(units)));
      exec.seconds += run.total_seconds;
      exec.peak_memory_bytes =
          std::max(exec.peak_memory_bytes, run.peak_memory_bytes);
      exec.overloaded = exec.overloaded || run.overloaded;
      resident = std::max(resident, final_residual);
    }
    exec.residual_bytes = std::max(0.0, resident - residual_bytes);
    return exec;
  };
}

}  // namespace vcmp
