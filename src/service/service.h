#ifndef VCMP_SERVICE_SERVICE_H_
#define VCMP_SERVICE_SERVICE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/runner.h"
#include "metrics/service_report.h"
#include "service/admission.h"
#include "service/arrival.h"
#include "service/batcher.h"

namespace vcmp {

class Tracer;

/// What executing one formed batch cost, in simulated terms.
struct BatchExecution {
  /// Simulated execution seconds (the engine holds the cluster for this
  /// long; the next batch forms afterwards).
  double seconds = 0.0;
  /// Max per-machine memory demand during the batch (includes the
  /// residual seeded at start), paper-scale bytes.
  double peak_memory_bytes = 0.0;
  /// The batch's own residual contribution (held until flushed).
  double residual_bytes = 0.0;
  bool overloaded = false;
};

/// Runs one formed batch given the residual memory currently resident
/// (max per machine, paper-scale bytes). The serving loop is executor-
/// agnostic: production uses MakeRunnerExecutor below; unit tests plug in
/// closed-form synthetic executors.
using BatchExecutor = std::function<Result<BatchExecution>(
    const std::vector<QueryArrival>& batch, double residual_bytes)>;

struct ServiceOptions {
  /// Arrival window; after it closes the loop drains the queue.
  double horizon_seconds = 60.0;
  /// How long a finished batch's residual stays resident before the
  /// results are aggregated, delivered, and freed. This is the drain the
  /// dynamic batcher rides: residual accumulates while batches finish
  /// faster than results flush, and frees up as the flush queue empties.
  double drain_delay_seconds = 4.0;
  /// --- Observability (src/obs) ---
  /// When set, the loop emits the full query lifecycle on a
  /// "<trace_label>/lifecycle" track — arrive / admit / shed instants,
  /// one span per executed batch, flush instants — and after every
  /// event a gauge bundle (service.generated/admitted/shed/queued/
  /// executing/completed/residual_bytes) whose ledger identity
  ///   generated == admitted + shed,
  ///   admitted  == queued + executing + completed
  /// the invariant tests check at every bundle. Timestamps come from
  /// the loop's SimClock. Null = off.
  Tracer* tracer = nullptr;
  std::string trace_label = "service";
};

/// The deterministic multi-tenant serving loop: a discrete-event
/// simulation driving arrivals -> admission -> batch formation ->
/// execution -> residual drain on one SimClock. The engine is serial
/// (batches execute one at a time, as in the paper's runner); "in-flight"
/// memory is the residual of finished-but-unflushed batches.
class ServingLoop {
 public:
  /// `policy` and `executor` must outlive Run().
  ServingLoop(const ArrivalProcess& arrivals, AdmissionOptions admission,
              BatchPolicy& policy, BatchExecutor executor,
              ServiceOptions options);

  /// Runs the simulation to completion (all arrivals delivered, queue
  /// drained, residuals flushed). Fails with FailedPrecondition when a
  /// queued query can never be scheduled (its units exceed the memory
  /// model's feasible batch even with zero residual) and with the
  /// executor's Status when a batch run fails.
  Result<ServiceReport> Run();

 private:
  const ArrivalProcess& arrivals_;
  AdmissionOptions admission_;
  BatchPolicy& policy_;
  BatchExecutor executor_;
  ServiceOptions options_;
};

/// Production executor: runs each batch through MultiProcessingRunner on
/// `dataset`, seeding the runner's initial residual with the in-flight
/// bytes so the engine's overload detection sees the true footprint.
/// Batches mixing several task types run as consecutive single-task
/// sub-jobs (one engine run each); seconds add up, peaks take the max.
/// `dataset` must outlive the executor.
BatchExecutor MakeRunnerExecutor(const Dataset& dataset,
                                 const RunnerOptions& runner_options);

}  // namespace vcmp

#endif  // VCMP_SERVICE_SERVICE_H_
