#include "service/serve_spec.h"

#include <cstdlib>
#include <memory>
#include <set>

#include "common/string_util.h"
#include "core/tuning/memory_fit.h"
#include "core/tuning/trainer.h"
#include "graph/datasets.h"
#include "service/service.h"
#include "tasks/task_registry.h"

namespace vcmp {
namespace {

const std::set<std::string>& KnownKeys() {
  static const auto& keys = *new std::set<std::string>{
      "dataset",  "task",     "system",      "cluster",
      "machines", "scale",    "seed",        "threads",
      "horizon",  "clients",  "rate",        "trace",
      "units",    "queue_capacity", "per_client_capacity",
      "policy",   "max_wait", "drain_delay", "overload_fraction",
      "safety",   "train_target", "job_overhead"};
  return keys;
}

Result<ClusterSpec> ResolveCluster(const ServeSpec& spec) {
  ClusterSpec cluster;
  if (spec.cluster == "galaxy") {
    cluster = ClusterSpec::Galaxy8();
  } else if (spec.cluster == "galaxy27") {
    cluster = ClusterSpec::Galaxy27();
  } else if (spec.cluster == "docker") {
    cluster = ClusterSpec::Docker32();
  } else {
    return Status::InvalidArgument("scenario '" + spec.name +
                                   "': unknown cluster '" + spec.cluster +
                                   "'");
  }
  if (spec.machines > 0) cluster = cluster.WithMachines(spec.machines);
  return cluster;
}

}  // namespace

Result<std::vector<TraceSegment>> ParseTrace(const std::string& trace) {
  std::vector<TraceSegment> segments;
  for (const std::string& part : SplitString(trace, ",")) {
    std::vector<std::string> pair = SplitString(part, "x");
    if (pair.size() != 2) {
      return Status::InvalidArgument(
          "malformed trace segment '" + part +
          "' (expected DURATIONxRATE, e.g. '30x12')");
    }
    TraceSegment segment;
    segment.duration_seconds = std::atof(pair[0].c_str());
    segment.rate_per_second = std::atof(pair[1].c_str());
    if (segment.duration_seconds <= 0.0) {
      return Status::InvalidArgument("trace segment '" + part +
                                     "' has a non-positive duration");
    }
    segments.push_back(segment);
  }
  if (segments.empty()) {
    return Status::InvalidArgument("trace is empty");
  }
  return segments;
}

Result<std::vector<ServeSpec>> ParseServeSpecs(
    const IniDocument& document) {
  std::vector<ServeSpec> specs;
  for (const IniDocument::Section& section : document.sections()) {
    if (section.name.empty()) {
      return Status::InvalidArgument(
          "serving keys must live inside a [named] section");
    }
    for (const auto& [key, value] : section.values) {
      (void)value;
      if (KnownKeys().find(key) == KnownKeys().end()) {
        return Status::InvalidArgument("scenario '" + section.name +
                                       "': unknown key '" + key + "'");
      }
    }
    ServeSpec spec;
    spec.name = section.name;
    spec.dataset = IniDocument::GetString(section, "dataset", spec.dataset);
    spec.task = IniDocument::GetString(section, "task", spec.task);
    spec.system = IniDocument::GetString(section, "system", spec.system);
    spec.cluster = IniDocument::GetString(section, "cluster", spec.cluster);
    VCMP_ASSIGN_OR_RETURN(int64_t machines,
                          IniDocument::GetInt(section, "machines", 0));
    spec.machines = static_cast<uint32_t>(machines);
    VCMP_ASSIGN_OR_RETURN(spec.scale,
                          IniDocument::GetDouble(section, "scale", 0.0));
    VCMP_ASSIGN_OR_RETURN(
        int64_t seed,
        IniDocument::GetInt(section, "seed",
                            static_cast<int64_t>(spec.seed)));
    spec.seed = static_cast<uint64_t>(seed);
    VCMP_ASSIGN_OR_RETURN(int64_t threads,
                          IniDocument::GetInt(section, "threads", 0));
    spec.threads = static_cast<uint32_t>(threads);
    VCMP_ASSIGN_OR_RETURN(spec.horizon_seconds,
                          IniDocument::GetDouble(section, "horizon",
                                                 spec.horizon_seconds));
    VCMP_ASSIGN_OR_RETURN(
        int64_t clients,
        IniDocument::GetInt(section, "clients",
                            static_cast<int64_t>(spec.clients)));
    if (clients < 1) {
      return Status::InvalidArgument("scenario '" + spec.name +
                                     "': clients must be >= 1");
    }
    spec.clients = static_cast<uint32_t>(clients);
    VCMP_ASSIGN_OR_RETURN(spec.rate_per_second,
                          IniDocument::GetDouble(section, "rate",
                                                 spec.rate_per_second));
    spec.trace = IniDocument::GetString(section, "trace", spec.trace);
    VCMP_ASSIGN_OR_RETURN(spec.units_per_query,
                          IniDocument::GetDouble(section, "units",
                                                 spec.units_per_query));
    VCMP_ASSIGN_OR_RETURN(
        int64_t total_capacity,
        IniDocument::GetInt(section, "queue_capacity",
                            static_cast<int64_t>(spec.total_capacity)));
    spec.total_capacity = static_cast<size_t>(total_capacity);
    VCMP_ASSIGN_OR_RETURN(
        int64_t per_client,
        IniDocument::GetInt(
            section, "per_client_capacity",
            static_cast<int64_t>(spec.per_client_capacity)));
    spec.per_client_capacity = static_cast<size_t>(per_client);
    VCMP_ASSIGN_OR_RETURN(
        spec.job_overhead_seconds,
        IniDocument::GetDouble(section, "job_overhead",
                               spec.job_overhead_seconds));
    spec.policy = IniDocument::GetString(section, "policy", spec.policy);
    VCMP_ASSIGN_OR_RETURN(spec.max_wait_seconds,
                          IniDocument::GetDouble(section, "max_wait",
                                                 spec.max_wait_seconds));
    VCMP_ASSIGN_OR_RETURN(
        spec.drain_delay_seconds,
        IniDocument::GetDouble(section, "drain_delay",
                               spec.drain_delay_seconds));
    VCMP_ASSIGN_OR_RETURN(
        spec.overload_fraction,
        IniDocument::GetDouble(section, "overload_fraction",
                               spec.overload_fraction));
    VCMP_ASSIGN_OR_RETURN(spec.safety_fraction,
                          IniDocument::GetDouble(section, "safety",
                                                 spec.safety_fraction));
    VCMP_ASSIGN_OR_RETURN(spec.train_target,
                          IniDocument::GetDouble(section, "train_target",
                                                 spec.train_target));
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Status::InvalidArgument("the serving INI defines no scenario");
  }
  return specs;
}

Result<ServiceReport> RunServeScenario(const ServeSpec& spec,
                                       Tracer* tracer) {
  VCMP_ASSIGN_OR_RETURN(DatasetInfo info, FindDataset(spec.dataset));
  Dataset dataset = LoadDataset(info.id, spec.scale);
  VCMP_ASSIGN_OR_RETURN(ClusterSpec cluster, ResolveCluster(spec));
  SystemKind system = SystemKind::kPregelPlus;
  if (!SystemKindFromName(spec.system, &system)) {
    return Status::InvalidArgument("scenario '" + spec.name +
                                   "': unknown system '" + spec.system +
                                   "'");
  }
  // Validate the task name up front (the executor would also catch it,
  // but only at the first batch formation).
  VCMP_ASSIGN_OR_RETURN(std::unique_ptr<MultiTask> task,
                        MakeTask(spec.task));
  (void)task;

  RunnerOptions runner_options;
  runner_options.cluster = cluster;
  runner_options.system = system;
  runner_options.seed = spec.seed;
  runner_options.execution_threads = spec.threads;
  if (spec.job_overhead_seconds > 0.0) {
    runner_options.cost.batch_overhead_seconds = spec.job_overhead_seconds;
  }

  std::vector<ClientSpec> clients(spec.clients);
  for (uint32_t i = 0; i < spec.clients; ++i) {
    clients[i].name = StrFormat("client-%u", i);
    clients[i].task = spec.task;
    clients[i].units_per_query = spec.units_per_query;
    clients[i].rate_per_second = spec.rate_per_second;
    if (!spec.trace.empty()) {
      VCMP_ASSIGN_OR_RETURN(clients[i].trace, ParseTrace(spec.trace));
    }
  }
  ArrivalOptions arrival_options;
  arrival_options.seed = spec.seed;
  arrival_options.horizon_seconds = spec.horizon_seconds;
  ArrivalProcess arrivals(std::move(clients), arrival_options);

  AdmissionOptions admission;
  admission.per_client_capacity = spec.per_client_capacity;
  admission.total_capacity = spec.total_capacity;

  std::unique_ptr<BatchPolicy> policy;
  if (spec.policy == "dynamic") {
    // Section 5's training phase, run against the serving deployment.
    Trainer trainer(dataset, runner_options);
    VCMP_ASSIGN_OR_RETURN(
        std::vector<TrainingSample> samples,
        trainer.CollectSamples(*task, spec.train_target));
    VCMP_ASSIGN_OR_RETURN(MemoryModels models, FitMemoryModels(samples));
    DynamicBatcherOptions options;
    options.overload_fraction = spec.overload_fraction;
    options.machine_memory_bytes = cluster.machine.memory_bytes;
    options.safety_fraction = spec.safety_fraction;
    options.max_wait_seconds = spec.max_wait_seconds;
    policy = std::make_unique<DynamicBatcher>(models, options);
  } else {
    std::vector<std::string> parts = SplitString(spec.policy, ":");
    if (parts.size() == 2 && parts[0] == "fixed") {
      policy = std::make_unique<FixedBatcher>(std::atof(parts[1].c_str()),
                                              spec.max_wait_seconds);
    } else {
      return Status::InvalidArgument(
          "scenario '" + spec.name + "': unknown policy '" + spec.policy +
          "' (dynamic | fixed:UNITS)");
    }
  }

  ServiceOptions service_options;
  service_options.horizon_seconds = spec.horizon_seconds;
  service_options.drain_delay_seconds = spec.drain_delay_seconds;
  service_options.tracer = tracer;
  service_options.trace_label = spec.name;

  BatchExecutor executor = MakeRunnerExecutor(dataset, runner_options);
  ServingLoop loop(arrivals, admission, *policy, executor,
                   service_options);
  VCMP_ASSIGN_OR_RETURN(ServiceReport report, loop.Run());
  report.dataset = dataset.info.name;
  report.system = SystemName(system);
  return report;
}

}  // namespace vcmp
