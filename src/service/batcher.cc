#include "service/batcher.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace vcmp {

FixedBatcher::FixedBatcher(double batch_units, double max_wait_seconds)
    : batch_units_(std::max(1.0, batch_units)),
      max_wait_seconds_(max_wait_seconds) {}

std::string FixedBatcher::name() const {
  return StrFormat("fixed-%.0f", batch_units_);
}

double FixedBatcher::NextBatchUnits(const BatcherObservation& obs) {
  if (obs.queued_units >= batch_units_) return batch_units_;
  if (obs.oldest_wait_seconds >= max_wait_seconds_) {
    return std::min(obs.queued_units, batch_units_);
  }
  return 0.0;
}

DynamicBatcher::DynamicBatcher(std::vector<MemoryModels> models,
                               DynamicBatcherOptions options)
    : models_(std::move(models)), options_(options) {}

DynamicBatcher::DynamicBatcher(const MemoryModels& models,
                               DynamicBatcherOptions options)
    : DynamicBatcher(std::vector<MemoryModels>{models}, options) {}

std::string DynamicBatcher::name() const { return "dynamic"; }

double DynamicBatcher::PredictedPeakBytes(double units) const {
  double peak = 0.0;
  for (const MemoryModels& models : models_) {
    peak = std::max(peak, models.peak.Eval(units));
  }
  return peak;
}

double DynamicBatcher::MaxFeasibleUnits(double residual_bytes) const {
  const double budget = (1.0 - options_.safety_fraction) *
                        options_.overload_fraction *
                        options_.machine_memory_bytes;
  const double available = budget - residual_bytes;
  if (PredictedPeakBytes(options_.min_batch_units) > available) {
    return 0.0;
  }
  // The fitted power laws (a > 0, b > 0) are increasing in W, so the
  // feasible set is a prefix: binary-search its upper edge on integral
  // unit counts. ~40 Eval calls; runs once per batch formation.
  double lo = options_.min_batch_units;       // Known feasible.
  double hi = options_.max_batch_units;       // Upper bound.
  if (PredictedPeakBytes(hi) <= available) return hi;
  while (hi - lo > 1.0) {
    double mid = std::floor((lo + hi) / 2.0);
    if (PredictedPeakBytes(mid) <= available) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double DynamicBatcher::NextBatchUnits(const BatcherObservation& obs) {
  const double feasible = MaxFeasibleUnits(obs.residual_bytes);
  if (feasible < options_.min_batch_units) {
    return 0.0;  // Memory-blocked: wait for the residual ledger to drain.
  }
  if (obs.queued_units >= feasible) {
    // Memory-limited regime: take the largest batch that fits (Eq. 6's
    // greedy maximality, applied to the live queue).
    return feasible;
  }
  if (obs.oldest_wait_seconds >= options_.max_wait_seconds) {
    // Age trigger: low load, run what we have so nobody starves.
    return std::min(obs.queued_units, feasible);
  }
  return 0.0;  // Coalesce: let the batch grow toward the memory limit.
}

}  // namespace vcmp
