#include "service/arrival.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace vcmp {
namespace {

/// Exponential inter-arrival draw for rate lambda (inverse-CDF on the
/// open unit interval so log() never sees 0).
double NextInterArrival(Rng& rng, double rate) {
  double u = rng.NextDouble();
  return -std::log1p(-u) / rate;
}

/// Appends one client's homogeneous-Poisson arrivals at `rate` over
/// [t0, t1) to `out`.
void GenerateSegment(Rng& rng, double rate, double t0, double t1,
                     uint32_t client, const ClientSpec& spec,
                     std::vector<QueryArrival>* out) {
  if (rate <= 0.0) return;
  double t = t0;
  while (true) {
    t += NextInterArrival(rng, rate);
    if (t >= t1) break;
    QueryArrival query;
    query.client = client;
    query.task = spec.task;
    query.units = spec.units_per_query;
    query.arrival_seconds = t;
    out->push_back(query);
  }
}

}  // namespace

ArrivalProcess::ArrivalProcess(std::vector<ClientSpec> clients,
                               ArrivalOptions options)
    : clients_(std::move(clients)), options_(options) {}

Result<std::vector<QueryArrival>> ArrivalProcess::Generate() const {
  if (options_.horizon_seconds <= 0.0) {
    return Status::InvalidArgument("arrival horizon must be positive");
  }
  if (clients_.empty()) {
    return Status::InvalidArgument("arrival process needs >= 1 client");
  }
  Rng root(options_.seed);
  std::vector<QueryArrival> merged;
  for (uint32_t client = 0; client < clients_.size(); ++client) {
    // Fork unconditionally so a client's stream depends only on its index
    // and the seed, not on the other clients' configurations.
    Rng rng = root.Fork();
    const ClientSpec& spec = clients_[client];
    if (spec.units_per_query < 1.0) {
      return Status::InvalidArgument("client '" + spec.name +
                                     "': units_per_query must be >= 1");
    }
    if (spec.trace.empty()) {
      if (spec.rate_per_second <= 0.0) {
        return Status::InvalidArgument("client '" + spec.name +
                                       "': rate must be positive");
      }
      GenerateSegment(rng, spec.rate_per_second, 0.0,
                      options_.horizon_seconds, client, spec, &merged);
    } else {
      double trace_rate = 0.0;
      for (const TraceSegment& segment : spec.trace) {
        if (segment.duration_seconds <= 0.0) {
          return Status::InvalidArgument(
              "client '" + spec.name +
              "': trace segment durations must be positive");
        }
        trace_rate += segment.rate_per_second;
      }
      if (trace_rate <= 0.0) {
        return Status::InvalidArgument(
            "client '" + spec.name +
            "': trace must contain a positive rate");
      }
      // The trace repeats until the horizon.
      double t0 = 0.0;
      size_t segment_index = 0;
      while (t0 < options_.horizon_seconds) {
        const TraceSegment& segment =
            spec.trace[segment_index % spec.trace.size()];
        double t1 = std::min(t0 + segment.duration_seconds,
                             options_.horizon_seconds);
        GenerateSegment(rng, segment.rate_per_second, t0, t1, client, spec,
                        &merged);
        t0 += segment.duration_seconds;
        ++segment_index;
      }
    }
  }
  // Stable per-client generation order + (time, client) comparison makes
  // the merged sequence fully deterministic, exact-tie or not.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const QueryArrival& a, const QueryArrival& b) {
                     if (a.arrival_seconds != b.arrival_seconds) {
                       return a.arrival_seconds < b.arrival_seconds;
                     }
                     return a.client < b.client;
                   });
  for (uint64_t id = 0; id < merged.size(); ++id) merged[id].id = id;
  return merged;
}

}  // namespace vcmp
