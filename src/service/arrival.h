#ifndef VCMP_SERVICE_ARRIVAL_H_
#define VCMP_SERVICE_ARRIVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace vcmp {

/// One query arriving at the serving layer: a unit-task request (e.g. one
/// PPR source, one SSSP source) carrying `units` workload units of `task`.
struct QueryArrival {
  /// Global arrival rank (assigned after the per-client streams merge);
  /// stable across runs with the same seed.
  uint64_t id = 0;
  uint32_t client = 0;
  std::string task = "BPPR";
  double units = 1.0;
  double arrival_seconds = 0.0;
};

/// One segment of a piecewise-constant rate trace: `rate_per_second`
/// arrivals/s for `duration_seconds`. A burst is a high-rate segment
/// between low-rate ones.
struct TraceSegment {
  double duration_seconds = 0.0;
  double rate_per_second = 0.0;
};

/// One tenant's arrival stream.
struct ClientSpec {
  std::string name;
  std::string task = "BPPR";
  /// Workload units per query (each query is `units` unit tasks batched
  /// atomically — a client asking for a 4-walk PPR source ships 4 units).
  double units_per_query = 1.0;
  /// Steady Poisson rate (queries/second); used when `trace` is empty.
  double rate_per_second = 1.0;
  /// Piecewise-constant rate trace. When non-empty it replaces
  /// rate_per_second; the trace repeats until the horizon.
  std::vector<TraceSegment> trace;
};

struct ArrivalOptions {
  uint64_t seed = 1;
  /// Arrivals are generated on [0, horizon_seconds).
  double horizon_seconds = 60.0;
};

/// The simulated arrival process: per-client Poisson (or trace-modulated
/// Poisson) streams, merged into one time-ordered sequence.
///
/// Determinism contract: each client draws from its own forked RNG stream
/// (Rng(seed).Fork() per client index), so adding or reordering *other*
/// clients never perturbs a client's arrival times, and the merged
/// sequence is identical across runs and machines for a given seed.
class ArrivalProcess {
 public:
  ArrivalProcess(std::vector<ClientSpec> clients, ArrivalOptions options);

  /// Generates the full merged arrival sequence, sorted by arrival time
  /// with (client, per-client order) tie-breaks; ids are the ranks in the
  /// merged order. Returns InvalidArgument on a non-positive horizon,
  /// empty client list, or a client with no positive rate.
  Result<std::vector<QueryArrival>> Generate() const;

  const std::vector<ClientSpec>& clients() const { return clients_; }

 private:
  std::vector<ClientSpec> clients_;
  ArrivalOptions options_;
};

}  // namespace vcmp

#endif  // VCMP_SERVICE_ARRIVAL_H_
