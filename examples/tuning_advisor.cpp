// Tuning advisor: the Section-5 workflow as a command-line tool. Given a
// task, a workload and a cluster size, it trains the cost models on light
// doubling workloads, fits M*(W) and Mres(W) with Levenberg-Marquardt,
// prints the fitted models, and emits the learned batch schedule — then
// verifies it against Full-Parallelism.
//
//   $ ./build/examples/tuning_advisor [workload] [machines] [task]
//   $ ./build/examples/tuning_advisor 5120 4 BPPR

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/units.h"
#include "core/runner.h"
#include "core/tuning/tuner.h"
#include "graph/datasets.h"
#include "tasks/task_registry.h"

int main(int argc, char** argv) {
  using namespace vcmp;

  double workload = argc > 1 ? std::atof(argv[1]) : 5120.0;
  uint32_t machines =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 4;
  std::string task_name = argc > 3 ? argv[3] : "BPPR";

  auto task = MakeTask(task_name);
  if (!task.ok()) {
    std::cerr << task.status().ToString() << "\n";
    return 1;
  }
  Dataset dblp = LoadDataset(DatasetId::kDblp, /*scale_override=*/64.0);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8().WithMachines(machines);

  std::cout << "Tuning " << task_name << " workload " << workload << " on "
            << options.cluster.ToString() << " over "
            << dblp.graph.ToString() << "\n\n";

  // --- Training phase ---
  Tuner tuner(dblp, options);
  auto plan = tuner.Tune(*task.value(), workload);
  if (!plan.ok()) {
    std::cerr << "tuning failed: " << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Training samples (1-batch light workloads):\n";
  for (const TrainingSample& sample : plan.value().samples) {
    std::cout << StrFormat("  W=%-6.0f peak=%7.2fGB residual=%7.2fGB"
                           " time=%.1fs\n",
                           sample.workload,
                           BytesToGiB(sample.peak_memory_bytes),
                           BytesToGiB(sample.residual_memory_bytes),
                           sample.seconds);
  }
  std::cout << "\nFitted models: " << plan.value().models.ToString()
            << "\nLearned schedule: " << plan.value().schedule.ToString()
            << StrFormat("  (training cost: %.1fs simulated)\n\n",
                         plan.value().training_seconds);

  // --- Verification ---
  for (bool tuned : {false, true}) {
    MultiProcessingRunner runner(dblp, options);
    BatchSchedule schedule =
        tuned ? plan.value().schedule
              : BatchSchedule::FullParallelism(workload);
    auto report = runner.Run(*task.value(), schedule);
    if (!report.ok()) {
      std::cerr << report.status().ToString() << "\n";
      return 1;
    }
    std::cout << (tuned ? "Optimized:        " : "Full-Parallelism: ")
              << (report.value().overloaded
                      ? "OVERLOAD (>6000s)"
                      : StrFormat("%.1fs", report.value().total_seconds))
              << StrFormat("  peak mem %.1fGB\n",
                           BytesToGiB(report.value().peak_memory_bytes));
  }
  return 0;
}
