// Unequal-batch explorer: Section 4.7 as a tool. Splits a fixed workload
// into two batches W1 + W2 and sweeps delta = W1 - W2, demonstrating that
// the optimum puts MORE work in the first batch — the second batch has to
// live beside the first batch's residual memory.
//
//   $ ./build/examples/unequal_batches [total_workload] [machines]
//   $ ./build/examples/unequal_batches 12800 8

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/units.h"
#include "core/runner.h"
#include "graph/datasets.h"
#include "tasks/bppr.h"

int main(int argc, char** argv) {
  using namespace vcmp;

  double total = argc > 1 ? std::atof(argv[1]) : 12800.0;
  uint32_t machines =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 8;

  Dataset dblp = LoadDataset(DatasetId::kDblp, /*scale_override=*/64.0);
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8().WithMachines(machines);
  BpprTask task;

  std::cout << "BPPR total workload " << total << " on "
            << options.cluster.ToString() << "\n\n"
            << StrFormat("%-10s %-7s %-7s %-12s %-14s %s\n", "delta", "W1",
                         "W2", "time", "peak mem", "");

  double best_seconds = 1e300;
  double best_delta = 0.0;
  const int steps = 8;
  for (int i = -steps; i <= steps; i += 2) {
    double delta = total * i / steps;
    BatchSchedule schedule = BatchSchedule::TwoBatch(total, delta);
    MultiProcessingRunner runner(dblp, options);
    auto report = runner.Run(task, schedule);
    if (!report.ok()) {
      std::cerr << report.status().ToString() << "\n";
      return 1;
    }
    const RunReport& r = report.value();
    if (!r.overloaded && r.total_seconds < best_seconds) {
      best_seconds = r.total_seconds;
      best_delta = delta;
    }
    std::cout << StrFormat(
        "%-10.0f %-7.0f %-7.0f %-12s %-14s\n", delta,
        schedule.workloads()[0], schedule.workloads()[1],
        r.overloaded ? "Overload" : StrFormat("%.1fs", r.total_seconds).c_str(),
        StrFormat("%.1fGB", BytesToGiB(r.peak_memory_bytes)).c_str());
  }
  std::cout << StrFormat(
      "\nOptimum at delta = %.0f (W1 = %.0f > W2 = %.0f): front-loading "
      "balances memory\nacross batches because residual memory only "
      "burdens the later batch.\n",
      best_delta, (total + best_delta) / 2, (total - best_delta) / 2);
  return 0;
}
