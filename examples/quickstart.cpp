// Quickstart: build a graph, pick a cluster and a VC-system, run a batch
// Personalized PageRank multi-processing job under two different batch
// schedules, and compare the simulated outcome.
//
//   $ ./build/examples/quickstart
//
// This is the 60-second tour of the public API:
//   LoadDataset -> MultiProcessingRunner -> BatchSchedule -> RunReport.

#include <iostream>

#include "common/string_util.h"
#include "common/units.h"
#include "core/batch_schedule.h"
#include "core/runner.h"
#include "graph/datasets.h"
#include "tasks/bppr.h"

int main() {
  using namespace vcmp;

  // 1. A graph. Stand-ins for the paper's six SNAP datasets are built in;
  //    scale_override shrinks generation while the simulator keeps
  //    reporting paper-scale statistics.
  Dataset dblp = LoadDataset(DatasetId::kDblp, /*scale_override=*/64.0);
  std::cout << "Loaded " << dblp.info.name << " stand-in: "
            << dblp.graph.ToString() << " (scale " << dblp.scale << ")\n";

  // 2. A cluster and a system. Galaxy-8 is the paper's 8-machine local
  //    cluster; Pregel+ is the C++/MPI baseline system.
  RunnerOptions options;
  options.cluster = ClusterSpec::Galaxy8();
  options.system = SystemKind::kPregelPlus;

  // 3. A multi-processing task: W = 10240 alpha-decay random walks from
  //    every vertex (the paper's heavy BPPR workload).
  BpprTask task;
  const double workload = 10240.0;

  // 4. Run it two ways: Full-Parallelism vs a 2-batch split.
  for (uint32_t batches : {1u, 2u}) {
    MultiProcessingRunner runner(dblp, options);
    auto report =
        runner.Run(task, BatchSchedule::Equal(workload, batches));
    if (!report.ok()) {
      std::cerr << "run failed: " << report.status().ToString() << "\n";
      return 1;
    }
    const RunReport& r = report.value();
    std::cout << "\n" << batches << "-batch: "
              << (r.overloaded ? "OVERLOAD (>6000s)"
                               : StrFormat("%.1fs", r.total_seconds))
              << "\n  rounds: " << r.total_rounds
              << ", messages/round: " << FormatCount(r.MessagesPerRound())
              << "\n  peak memory/machine: "
              << StrFormat("%.1fGB", BytesToGiB(r.peak_memory_bytes))
              << " (physical: 16GB)\n";
  }

  std::cout << "\nThe round-congestion tradeoff in action: halving the "
               "per-round congestion\nkeeps every machine inside physical "
               "memory and more than repays the extra rounds.\n";
  return 0;
}
