// Cloud cost explorer: Section 4.6 as a tool. Sweeps the batch count for
// a workload on the Docker-32 cloud cluster and prints the running time
// and credit cost of each setting — showing how an ill-chosen batch
// scheme directly wastes cloud budget.
//
//   $ ./build/examples/cloud_cost_explorer [workload] [task]
//   $ ./build/examples/cloud_cost_explorer 40960 BPPR

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/units.h"
#include "core/runner.h"
#include "graph/datasets.h"
#include "sim/monetary_model.h"
#include "tasks/task_registry.h"

int main(int argc, char** argv) {
  using namespace vcmp;

  double workload = argc > 1 ? std::atof(argv[1]) : 40960.0;
  std::string task_name = argc > 2 ? argv[2] : "BPPR";

  auto task = MakeTask(task_name);
  if (!task.ok()) {
    std::cerr << task.status().ToString() << "\n";
    return 1;
  }
  Dataset dblp = LoadDataset(DatasetId::kDblp, /*scale_override=*/64.0);
  RunnerOptions options;
  options.cluster = ClusterSpec::Docker32();

  MonetaryModel billing;
  std::cout << "Cluster: " << options.cluster.ToString()
            << StrFormat(" at %.1f credits/hour\n\n",
                         billing.ClusterRatePerSecond(options.cluster) *
                             3600.0);
  std::cout << StrFormat("%-10s %-14s %-12s %-16s %s\n", "#batches",
                         "time", "credits", "peak mem", "verdict");

  double best_cost = 1e300;
  uint32_t best_batches = 0;
  for (uint32_t batches : {1u, 2u, 4u, 8u, 16u, 32u}) {
    MultiProcessingRunner runner(dblp, options);
    auto report =
        runner.Run(*task.value(), BatchSchedule::Equal(workload, batches));
    if (!report.ok()) {
      std::cerr << report.status().ToString() << "\n";
      return 1;
    }
    const RunReport& r = report.value();
    if (!r.overloaded && r.monetary_cost < best_cost) {
      best_cost = r.monetary_cost;
      best_batches = batches;
    }
    std::cout << StrFormat(
        "%-10u %-14s %-12s %-16s %s\n", batches,
        r.overloaded ? "Overload" : StrFormat("%.0fs", r.total_seconds).c_str(),
        MonetaryModel::Format(r.monetary_cost, r.overloaded).c_str(),
        StrFormat("%.1fGB", BytesToGiB(r.peak_memory_bytes)).c_str(),
        r.overloaded ? "cut off at 6000s (billed as lower bound)" : "ok");
  }
  std::cout << StrFormat(
      "\nCheapest setting: %u batches at %s — the batch scheme IS a cloud "
      "budget decision.\n",
      best_batches, MonetaryModel::Format(best_cost, false).c_str());
  return 0;
}
